(* Tests for the host-side debugger: symbol resolution, the synchronous
   session API over the simulated serial wire against a real guest kernel
   under the lightweight monitor, and the CLI command language. *)

module Machine = Vmm_hw.Machine
module Cpu = Vmm_hw.Cpu
module Asm = Vmm_hw.Asm
module Costs = Vmm_hw.Costs
module Monitor = Core.Monitor
module Kernel = Vmm_guest.Kernel
module Session = Vmm_debugger.Session
module Symbols = Vmm_debugger.Symbols
module Cli = Vmm_debugger.Cli
module Command = Vmm_proto.Command

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  n = 0 || go 0

let test_costs = { Costs.default with Costs.uart_cycles_per_byte = 2000 }

(* A live debugging rig: guest kernel at a gentle rate under the monitor,
   session attached over the wire. *)
let rig ?(rate = 20.0) () =
  let m = Machine.create ~mem_size:(16 * 1024 * 1024) ~costs:test_costs () in
  let mon = Monitor.install m in
  let program = Kernel.build (Kernel.default_config ~rate_mbps:rate) in
  Monitor.boot_guest mon program ~entry:Kernel.entry;
  Machine.run_seconds m 0.01;
  let session = Session.attach m in
  let symbols = Symbols.of_program program in
  (m, mon, program, session, symbols)

(* -- Symbols -- *)

let test_symbols_lookup () =
  let a = Asm.create ~origin:0x1000 () in
  Asm.label a "start";
  Asm.nop a;
  Asm.nop a;
  Asm.label a "middle";
  Asm.nop a;
  let p = Asm.assemble a in
  let s = Symbols.of_program p in
  check (Alcotest.option int) "address" (Some 0x1000) (Symbols.address s "start");
  check (Alcotest.option int) "missing" None (Symbols.address s "nope");
  (match Symbols.nearest s 0x1008 with
   | Some (name, base) ->
     check Alcotest.string "nearest name" "start" name;
     check int "nearest base" 0x1000 base
   | None -> Alcotest.fail "expected nearest");
  check Alcotest.string "format exact" "middle (0x1010)"
    (Symbols.format_addr s 0x1010);
  check Alcotest.string "format offset" "start+0x8 (0x1008)"
    (Symbols.format_addr s 0x1008);
  check Alcotest.string "format below" "0xf00" (Symbols.format_addr s 0xF00)

let test_symbols_edge_cases () =
  (* Empty table: nothing resolves, addresses render bare. *)
  let empty = Symbols.of_list [] in
  check bool "empty nearest" true (Symbols.nearest empty 0x1000 = None);
  check Alcotest.string "empty format" "0x1000"
    (Symbols.format_addr empty 0x1000);
  (* Duplicate labels on one address (an alias label) must resolve
     deterministically: the first in (address, name) order. *)
  let s =
    Symbols.of_list
      [ ("zz_alias", 0x2000); ("handler", 0x2000); ("tail", 0x2010) ]
  in
  (match Symbols.nearest s 0x2000 with
   | Some (name, base) ->
     check Alcotest.string "duplicate picks first by name" "handler" name;
     check int "duplicate base" 0x2000 base
   | None -> Alcotest.fail "expected nearest");
  (match Symbols.nearest s 0x2008 with
   | Some (name, base) ->
     check Alcotest.string "offset from duplicate" "handler" name;
     check int "offset base" 0x2000 base
   | None -> Alcotest.fail "expected nearest");
  (* Exactly on a later label: no spill-back to the earlier one. *)
  (match Symbols.nearest s 0x2010 with
   | Some (name, base) ->
     check Alcotest.string "exact later label" "tail" name;
     check int "exact later base" 0x2010 base
   | None -> Alcotest.fail "expected nearest");
  (* Below the first symbol: None, and format_addr falls back to hex. *)
  check bool "below first" true (Symbols.nearest s 0x1FFF = None);
  check Alcotest.string "below first format" "0x1fff"
    (Symbols.format_addr s 0x1FFF)

(* -- Session -- *)

let test_session_registers () =
  let m, _, _, session, _ = rig () in
  match Session.read_registers session with
  | Some regs ->
    check int "18 words" 18 (Array.length regs);
    check bool "write register" true (Session.write_register session 9 0xABCD);
    check int "landed" 0xABCD (Cpu.read_reg (Machine.cpu m) 9)
  | None -> Alcotest.fail "no register reply"

let test_session_memory () =
  let _, _, _, session, _ = rig () in
  check bool "write" true
    (Session.write_memory session ~addr:0x19000 ~data:"\xDE\xAD\xBE\xEF");
  (match Session.read_memory session ~addr:0x19000 ~len:4 with
   | Some data -> check Alcotest.string "readback" "\xDE\xAD\xBE\xEF" data
   | None -> Alcotest.fail "no memory reply");
  check bool "unmapped read fails" true
    (Session.read_memory session ~addr:0xFFFF0000 ~len:4 = None)

let test_session_breakpoint_flow () =
  let m, _, program, session, _ = rig () in
  let target = Asm.symbol program "scsi_handler" in
  check bool "insert" true (Session.insert_breakpoint session target);
  (match Session.wait_stop session with
   | Some (Command.Break addr) -> check int "hit scsi handler" target addr
   | _ -> Alcotest.fail "expected breakpoint stop");
  check bool "stopped" true (Cpu.stopped (Machine.cpu m));
  (match Session.step session with
   | Some (Command.Step_done addr) ->
     check bool "advanced" true (addr <> target)
   | _ -> Alcotest.fail "expected step report");
  check bool "remove" true (Session.remove_breakpoint session target);
  Session.continue_ session;
  Machine.run_seconds m 0.02;
  check bool "running again" false (Cpu.stopped (Machine.cpu m))

let test_session_halt_query () =
  let m, _, _, session, _ = rig () in
  check (Alcotest.option bool) "running" (Some true)
    (Session.is_running session);
  (match Session.halt session with
   | Some (Command.Halt_requested _) -> ()
   | _ -> Alcotest.fail "expected halt report");
  check (Alcotest.option bool) "stopped" (Some false)
    (Session.is_running session);
  (match Session.query session with
   | Some (Command.Halt_requested _) -> ()
   | _ -> Alcotest.fail "query should repeat the stop reason");
  Session.continue_ session;
  Machine.run_seconds m 0.01;
  check bool "resumed" false (Cpu.stopped (Machine.cpu m))

let test_session_detach_removes_breakpoints () =
  let m, mon, program, session, _ = rig () in
  let target = Asm.symbol program "timer_handler" in
  check bool "insert" true (Session.insert_breakpoint session target);
  (match Session.wait_stop session with
   | Some (Command.Break _) -> ()
   | _ -> Alcotest.fail "expected stop");
  check bool "detach" true (Session.detach session);
  check int "no breakpoints left" 0
    (Core.Breakpoints.count (Core.Stub.breakpoints (Monitor.stub mon)));
  Machine.run_seconds m 0.05;
  check bool "guest unbothered" false (Cpu.stopped (Machine.cpu m))

let test_session_latency_measured () =
  let _, _, _, session, _ = rig () in
  ignore (Session.read_registers session);
  let latency = Session.last_latency_s session in
  (* At 2000 cycles/byte, a ~160-byte exchange takes ~0.25 ms simulated. *)
  check bool "latency positive" true (latency > 0.0);
  check bool "latency sane" true (latency < 1.0)

let test_session_watchpoint_flow () =
  let m, mon, program, session, _ = rig ~rate:10.0 () in
  let counters = Asm.symbol program "counters" in
  (* 1. a watch on the tick counter stops the guest on the next tick *)
  check bool "insert watch" true
    (Session.insert_watchpoint session ~addr:counters ~len:4);
  (match Session.wait_stop session with
   | Some (Command.Watch_hit { pc; addr }) ->
     check int "watched address" counters addr;
     let th = Asm.symbol program "timer_handler" in
     check bool "pc inside timer handler" true (pc >= th && pc < th + 512)
   | _ -> Alcotest.fail "expected watch hit");
  check bool "stopped" true (Cpu.stopped (Machine.cpu m));
  (* 2. continue replays the store and runs on to the next hit *)
  Session.continue_ session;
  (match Session.wait_stop session with
   | Some (Command.Watch_hit _) -> ()
   | _ -> Alcotest.fail "expected second hit");
  (* 3. removing the watch frees the guest completely *)
  check bool "remove watch" true
    (Session.remove_watchpoint session ~addr:counters ~len:4);
  check int "table empty" 0
    (Core.Watchpoints.count (Monitor.watchpoints mon));
  Session.continue_ session;
  let ticks () = (Kernel.read_counters (Machine.mem m) program).Kernel.ticks in
  let before = ticks () in
  Machine.run_seconds m 0.2;
  check bool "guest free-running" true (ticks () > before + 2)

let test_session_watch_same_page_transparent () =
  (* Watching an address the guest never writes must not disturb it even
     though the rest of the page is stored to constantly. *)
  let m, mon, program, session, _ = rig ~rate:10.0 () in
  let unused = Asm.symbol program "counters" + 60 in
  check bool "insert watch" true
    (Session.insert_watchpoint session ~addr:unused ~len:4);
  let ticks () = (Kernel.read_counters (Machine.mem m) program).Kernel.ticks in
  let before = ticks () in
  Machine.run_seconds m 0.3;
  check bool "no stop" false (Cpu.stopped (Machine.cpu m));
  check bool "guest progressed" true (ticks () > before + 2);
  check int "no notifications" 0
    (Core.Stub.notifications_sent (Monitor.stub mon))

let test_session_console_read () =
  (* The guest prints through the console hypercall while streaming; the
     debugger drains it over the wire. *)
  let m = Machine.create ~mem_size:(16 * 1024 * 1024) ~costs:test_costs () in
  let mon = Monitor.install m in
  let a = Asm.create ~origin:0x1000 () in
  String.iter
    (fun c ->
      Asm.movi a 1 (Asm.imm (Char.code c));
      Asm.vmcall a (Asm.imm 0))
    "boot ok";
  Asm.sti a;
  Asm.label a "loop";
  Asm.jmp a (Asm.lbl "loop");
  Monitor.boot_guest mon (Asm.assemble a) ~entry:0x1000;
  Machine.run_seconds m 0.001;
  let session = Session.attach m in
  (match Session.read_console session with
   | Some text -> check Alcotest.string "console text" "boot ok" text
   | None -> Alcotest.fail "no console reply");
  (* draining semantics: a second read is empty *)
  match Session.read_console session with
  | Some "" -> ()
  | Some text -> Alcotest.failf "expected drained console, got %S" text
  | None -> Alcotest.fail "no second reply"

let test_session_profile () =
  let m, mon, program, session, _ = rig ~rate:100.0 () in
  Machine.run_seconds m 0.3 (* accumulate timer samples under load *);
  match Session.read_profile session with
  | None -> Alcotest.fail "no profile reply"
  | Some samples ->
    check bool "samples collected" true (List.length samples > 0);
    let total = List.fold_left (fun acc (_, c) -> acc + c) 0 samples in
    check bool "plausible sample count" true (total >= 10);
    (* every sampled pc lies inside the guest image *)
    let size = Bytes.length program.Asm.code in
    List.iter
      (fun (pc, _) ->
        if pc < Kernel.entry || pc >= Kernel.entry + size then
          Alcotest.failf "sample outside guest image: 0x%x" pc)
      samples;
    (* monitor-side view matches the wire view *)
    check int "same total as monitor"
      (List.fold_left (fun acc (_, c) -> acc + c) 0 (Monitor.profile mon))
      total

let test_breakpoint_and_watchpoint_together () =
  (* Both mechanisms active at once: a breakpoint in the timer handler
     and a watchpoint on the counters page must coexist; each stop is
     attributed to the right cause and the guest keeps working after. *)
  let m, _, program, session, _ = rig ~rate:10.0 () in
  let counters = Asm.symbol program "counters" in
  let th = Asm.symbol program "timer_handler" in
  check bool "bp" true (Session.insert_breakpoint session th);
  check bool "watch" true
    (Session.insert_watchpoint session ~addr:(counters + 4) ~len:4);
  (* first stop: the breakpoint at the handler's first instruction *)
  (match Session.wait_stop session with
   | Some (Command.Break addr) -> check int "breakpoint first" th addr
   | other ->
     Alcotest.failf "expected breakpoint, got %s"
       (match other with
        | Some r -> Format.asprintf "%a" Command.pp_stop_reason r
        | None -> "timeout"));
  Session.continue_ session;
  (* next stop: the watch on segs_issued fires inside the same handler *)
  (match Session.wait_stop session with
   | Some (Command.Watch_hit { addr; _ }) ->
     check int "watch second" (counters + 4) addr
   | other ->
     Alcotest.failf "expected watch hit, got %s"
       (match other with
        | Some r -> Format.asprintf "%a" Command.pp_stop_reason r
        | None -> "timeout"));
  check bool "remove watch" true
    (Session.remove_watchpoint session ~addr:(counters + 4) ~len:4);
  check bool "remove bp" true (Session.remove_breakpoint session th);
  Session.continue_ session;
  let ticks () = (Kernel.read_counters (Machine.mem m) program).Kernel.ticks in
  let before = ticks () in
  Machine.run_seconds m 0.3;
  check bool "guest healthy afterwards" true (ticks () > before + 1)

let test_session_query_verify () =
  (* The monitor verifies the shipped kernel at boot; qV reports it. *)
  let _, _, _, session, _ = rig () in
  match Session.query_verify session with
  | Some (text, fields) ->
    check bool "report text" true (contains text "analysis=");
    check (Alcotest.option Alcotest.string) "clean" (Some "clean")
      (List.assoc_opt "analysis" fields);
    check (Alcotest.option Alcotest.string) "no diagnostics" (Some "0")
      (List.assoc_opt "diags" fields);
    (match List.assoc_opt "instructions" fields with
     | Some n -> check bool "instruction count" true (int_of_string n > 100)
     | None -> Alcotest.fail "missing instructions field")
  | None -> Alcotest.fail "no qV reply"

(* -- CLI -- *)

let test_cli_regs_and_memory () =
  let _, _, program, session, symbols = rig () in
  let cli = Cli.create ~session ~symbols in
  let out = Cli.execute cli "regs" in
  check bool "regs output" true
    (String.length out > 0
    && (contains out "pc"));
  ignore program;
  let out = Cli.execute cli "x counters 16" in
  check bool "hex dump has address prefix" true
    (String.length out > 8 && out.[8] = ':')

let test_cli_breakpoints () =
  let m, _, _, session, symbols = rig () in
  let cli = Cli.create ~session ~symbols in
  let out = Cli.execute cli "break send_segment" in
  check bool "break acknowledges symbol" true
    (contains out "send_segment");
  let out = Cli.execute cli "wait" in
  check bool "wait reports breakpoint" true
    (contains out "breakpoint");
  check bool "stopped" true (Cpu.stopped (Machine.cpu m));
  let out = Cli.execute cli "step" in
  check bool "step reports" true
    (contains out "stepped");
  ignore (Cli.execute cli "delete send_segment");
  ignore (Cli.execute cli "continue")

let test_cli_disassembly () =
  let _, _, _, session, symbols = rig () in
  let cli = Cli.create ~session ~symbols in
  let out = Cli.execute cli "disas boot 3" in
  (* the first kernel instruction sets up the stack pointer *)
  check bool "shows movi" true
    (contains out "movi")

let test_cli_address_parsing () =
  let _, _, program, session, symbols = rig () in
  let cli = Cli.create ~session ~symbols in
  check (Alcotest.option int) "symbol" (Some (Asm.symbol program "boot"))
    (Cli.parse_address cli "boot");
  check (Alcotest.option int) "symbol+offset"
    (Some (Asm.symbol program "boot" + 16))
    (Cli.parse_address cli "boot+16");
  check (Alcotest.option int) "hex" (Some 0x1234) (Cli.parse_address cli "0x1234");
  check (Alcotest.option int) "garbage" None (Cli.parse_address cli "zzz")

let test_cli_profile () =
  let m, _, _, session, symbols = rig ~rate:100.0 () in
  Machine.run_seconds m 0.3;
  let cli = Cli.create ~session ~symbols in
  let out = Cli.execute cli "profile 5" in
  check bool "has sample header" true (contains out "samples");
  check bool "resolves a known symbol" true
    (contains out "idle_loop" || contains out "send_segment"
    || contains out "timer_handler" || contains out "scsi_handler"
    || contains out "syscall_send" || contains out "nic_handler"
    || contains out "seg_loop" || contains out "nic_spin")

let test_cli_errors () =
  let _, _, _, session, symbols = rig () in
  let cli = Cli.create ~session ~symbols in
  check bool "unknown command gives usage" true
    (contains (Cli.execute cli "frobnicate") "commands:");
  check bool "bad address" true
    (contains (Cli.execute cli "break zzz") "error")

let test_session_timeout_when_stub_dead () =
  (* A bare-metal machine has no stub: every command times out cleanly. *)
  let m = Machine.create ~mem_size:(16 * 1024 * 1024) ~costs:test_costs () in
  let a = Asm.create ~origin:0x1000 () in
  Asm.hlt a;
  Machine.boot m (Asm.assemble a) ~entry:0x1000;
  let session = Session.attach m in
  check bool "no register reply" true
    (Session.read_registers ~timeout_s:0.05 session = None);
  check bool "no memory reply" true
    (Session.read_memory ~timeout_s:0.05 session ~addr:0 ~len:4 = None);
  check bool "halt gets nothing" true
    (Session.halt ~timeout_s:0.05 session = None)

let test_cli_write_and_reg () =
  let m, _, _, session, symbols = rig () in
  let cli = Cli.create ~session ~symbols in
  check Alcotest.string "w writes" "ok" (Cli.execute cli "w 0x19000 cafef00d");
  let out = Cli.execute cli "x 0x19000 4" in
  check bool "hexdump shows bytes" true (contains out "ca fe f0 0d");
  check Alcotest.string "reg sets" "ok" (Cli.execute cli "reg 3 0x42");
  check int "landed" 0x42 (Vmm_hw.Cpu.read_reg (Machine.cpu m) 3);
  check bool "reg bad index" true
    (contains (Cli.execute cli "reg 99 0") "error")

let () =
  Alcotest.run "vmm_debugger"
    [
      ( "symbols",
        [
          Alcotest.test_case "lookup" `Quick test_symbols_lookup;
          Alcotest.test_case "edge cases" `Quick test_symbols_edge_cases;
        ] );
      ( "session",
        [
          Alcotest.test_case "registers" `Quick test_session_registers;
          Alcotest.test_case "memory" `Quick test_session_memory;
          Alcotest.test_case "breakpoint flow" `Quick test_session_breakpoint_flow;
          Alcotest.test_case "halt/query" `Quick test_session_halt_query;
          Alcotest.test_case "detach" `Quick test_session_detach_removes_breakpoints;
          Alcotest.test_case "latency" `Quick test_session_latency_measured;
          Alcotest.test_case "watchpoint flow" `Quick
            test_session_watchpoint_flow;
          Alcotest.test_case "watch transparency" `Quick
            test_session_watch_same_page_transparent;
          Alcotest.test_case "console read" `Quick test_session_console_read;
          Alcotest.test_case "query verify" `Quick test_session_query_verify;
          Alcotest.test_case "profile" `Quick test_session_profile;
          Alcotest.test_case "breakpoint + watchpoint" `Quick
            test_breakpoint_and_watchpoint_together;
        ] );
      ( "cli",
        [
          Alcotest.test_case "regs/memory" `Quick test_cli_regs_and_memory;
          Alcotest.test_case "breakpoints" `Quick test_cli_breakpoints;
          Alcotest.test_case "disassembly" `Quick test_cli_disassembly;
          Alcotest.test_case "address parsing" `Quick test_cli_address_parsing;
          Alcotest.test_case "errors" `Quick test_cli_errors;
          Alcotest.test_case "profile output" `Quick test_cli_profile;
          Alcotest.test_case "write/reg commands" `Quick test_cli_write_and_reg;
          Alcotest.test_case "timeout on dead stub" `Quick
            test_session_timeout_when_stub_dead;
        ] );
    ]
