(* Tests for the guest-image static verifier: the abstract domain, CFG
   recovery, one seeded violation per diagnostic class (a)-(f), and the
   zero-false-positive corpus — the shipped guest kernel (both modes)
   and every guest program the examples build must verify clean. *)

module Asm = Vmm_hw.Asm
module Isa = Vmm_hw.Isa
module Machine = Vmm_hw.Machine
module Domain = Vmm_analysis.Domain
module Cfg = Vmm_analysis.Cfg
module Verifier = Vmm_analysis.Verifier
module Vm_layout = Core.Vm_layout
module Kernel = Vmm_guest.Kernel
module Symbols = Vmm_debugger.Symbols

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* The monitor's view of a 16 MiB machine: guest owns everything below
   monitor_base (12 MiB). *)
let layout = Vm_layout.default ~mem_size:(16 * 1024 * 1024)

let config =
  {
    Verifier.guest_owns = Vm_layout.guest_owns layout;
    allowed_ports = Verifier.default_ports;
    entry_ring = 0;
  }

let classes (r : Verifier.report) =
  List.map (fun d -> d.Verifier.cls) r.diagnostics

let has cls (r : Verifier.report) = List.mem cls (classes r)

let assert_clean what (p : Asm.program) cfg_ =
  let r = Verifier.verify cfg_ p in
  if not r.Verifier.clean then
    Alcotest.failf "%s should verify clean:\n%s" what
      (Verifier.render ~symbols:(Symbols.of_program p) r)

(* -- Domain -- *)

let test_domain_ops () =
  (* constants are exact, wrap included *)
  check bool "wrap add" true
    (Domain.equal (Domain.add (Domain.const 0xFFFFFFFF) (Domain.const 2)) (Domain.const 1));
  check bool "const sub" true
    (Domain.equal (Domain.sub (Domain.const 4) (Domain.const 8)) (Domain.const 0xFFFFFFFC));
  (* intervals refuse to wrap *)
  check bool "iv add overflow" true
    (Domain.add (Domain.range 0 0xFFFFFFFF) (Domain.const 1) = Domain.Top);
  check bool "iv add" true
    (Domain.equal (Domain.add (Domain.range 16 32) (Domain.const 4)) (Domain.range 20 36));
  check bool "join hull" true
    (Domain.equal (Domain.join (Domain.const 4) (Domain.const 12)) (Domain.range 4 12));
  check bool "join top" true (Domain.join Domain.top (Domain.const 1) = Domain.Top);
  (* bitwise tracks constants only *)
  check bool "and const" true
    (Domain.equal (Domain.logand (Domain.const 0xFF) (Domain.const 0x0F)) (Domain.const 0x0F));
  check bool "and iv" true
    (Domain.logand (Domain.range 0 4) (Domain.const 1) = Domain.Top)

(* -- CFG recovery -- *)

let test_cfg_shape () =
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a 1 (Asm.imm 3);
  Asm.call a (Asm.lbl "double");
  Asm.label a "spin";
  Asm.jmp a (Asm.lbl "spin");
  Asm.label a "double";
  Asm.add a 1 1 1;
  Asm.ret a;
  let p = Asm.assemble a in
  let cfg = Cfg.create ~origin:p.Asm.origin p.Asm.code in
  Cfg.add_root cfg 0x1000;
  check int "instructions" 5 (Cfg.instruction_count cfg);
  check int "call edges" 1 (List.length (Cfg.calls cfg));
  check int "blocks" 3 (List.length (Cfg.blocks cfg));
  check bool "no issues" true (Cfg.issues cfg = []);
  check bool "text overlap" true
    (Cfg.overlaps_text cfg ~lo:0x1004 ~hi:0x1004);
  check bool "text miss" false
    (Cfg.overlaps_text cfg ~lo:(0x1000 + (5 * 8)) ~hi:(0x1000 + (5 * 8)))

(* -- Seeded violations, one per diagnostic class -- *)

(* (a) a bounded store into monitor-owned memory *)
let test_seed_monitor_store () =
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a 1 (Asm.imm layout.Vm_layout.monitor_base);
  Asm.movi a 2 (Asm.imm 0xDEAD);
  Asm.st a 1 0 2;
  Asm.label a "spin";
  Asm.jmp a (Asm.lbl "spin");
  let r = Verifier.verify config (Asm.assemble a) in
  check bool "dirty" false r.Verifier.clean;
  check bool "class a only" true (classes r = [ Verifier.Monitor_store ])

(* (b) boot irets into ring-3 code that runs a privileged instruction;
   exercises the constant-iret-frame root discovery as well *)
let test_seed_privileged_ring3 () =
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a Isa.sp (Asm.imm 0x8000);
  Asm.movi a 1 (Asm.imm 0x9000);
  Asm.push a 1 (* old sp *);
  Asm.movi a 1 (Asm.imm 0x3200);
  Asm.push a 1 (* flags: ring 3, IF *);
  Asm.movi a 1 (Asm.lbl "user");
  Asm.push a 1 (* return pc *);
  Asm.movi a 1 (Asm.imm 0);
  Asm.push a 1 (* error code *);
  Asm.iret a;
  Asm.label a "user";
  Asm.cli a;
  Asm.label a "uspin";
  Asm.jmp a (Asm.lbl "uspin");
  let p = Asm.assemble a in
  let r = Verifier.verify config p in
  check bool "class b only" true (classes r = [ Verifier.Privileged_reach ]);
  let d = List.hd r.Verifier.diagnostics in
  check int "flagged at the cli" (Asm.symbol p "user") d.Verifier.addr

(* (c) broken push/pop/ret discipline *)
let test_seed_unbalanced_ret () =
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a Isa.sp (Asm.imm 0x8000);
  Asm.movi a 1 (Asm.imm 5);
  Asm.push a 1;
  Asm.ret a;
  let r = Verifier.verify config (Asm.assemble a) in
  check bool "class c" true (has Verifier.Stack_unbalanced r)

let test_seed_pop_empty () =
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a Isa.sp (Asm.imm 0x8000);
  Asm.pop a 1;
  Asm.label a "spin";
  Asm.jmp a (Asm.lbl "spin");
  let r = Verifier.verify config (Asm.assemble a) in
  check bool "class c" true (has Verifier.Stack_unbalanced r)

(* (d) a store aimed into reachable text (self-modifying code) *)
let test_seed_text_write () =
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a 1 (Asm.lbl "spin");
  Asm.movi a 2 (Asm.imm 0);
  Asm.st a 1 0 2;
  Asm.label a "spin";
  Asm.jmp a (Asm.lbl "spin");
  let r = Verifier.verify config (Asm.assemble a) in
  check bool "class d only" true (classes r = [ Verifier.Text_write ])

(* (e) misaligned jump target, and fall-through off the image *)
let test_seed_misaligned_jump () =
  let a = Asm.create ~origin:0x1000 () in
  Asm.jmp a (Asm.imm 0x1004);
  let r = Verifier.verify config (Asm.assemble a) in
  check bool "class e only" true (classes r = [ Verifier.Control_flow ])

let test_seed_fall_off () =
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a 1 (Asm.imm 0);
  let r = Verifier.verify config (Asm.assemble a) in
  check bool "class e only" true (classes r = [ Verifier.Control_flow ])

(* (f) port I/O outside the machine's I/O bitmap *)
let test_seed_port_io () =
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a 1 (Asm.imm 0);
  Asm.outi a (Asm.imm 0x7777) 1;
  Asm.label a "spin";
  Asm.jmp a (Asm.lbl "spin");
  let r = Verifier.verify config (Asm.assemble a) in
  check bool "class f only" true (classes r = [ Verifier.Port_io ])

(* -- Zero false positives on everything we actually ship -- *)

let test_kernel_clean () =
  let p = Kernel.build (Kernel.default_config ~rate_mbps:100.) in
  let r = Verifier.verify config ~entry:Kernel.entry p in
  (if not r.Verifier.clean then
     Alcotest.failf "kernel should verify clean:\n%s"
       (Verifier.render ~symbols:(Symbols.of_program p) r));
  check bool "substantial" true (r.Verifier.instructions > 100);
  check bool "gates found" true (r.Verifier.roots > 1)

let test_kernel_user_mode_clean () =
  let cfgk = { (Kernel.default_config ~rate_mbps:100.) with Kernel.user_mode = true } in
  let p = Kernel.build cfgk in
  let r = Verifier.verify config ~entry:Kernel.entry p in
  (if not r.Verifier.clean then
     Alcotest.failf "user-mode kernel should verify clean:\n%s"
       (Verifier.render ~symbols:(Symbols.of_program p) r));
  (* the ring-3 application must have been discovered through the
     boot-time iret, on top of the entry point and the interrupt gates *)
  check bool "app root found" true (r.Verifier.roots >= 3)

(* The buggy guests from examples/crash_injection.ml (and bench's
   gauntlet): their bugs are data-dependent — a static verifier with a
   widening interval domain must stay conservative and silent. *)
let crash_guest bug =
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a Isa.sp (Asm.imm 0x20000);
  Asm.movi a 1 (Asm.imm 0);
  Asm.label a "warmup";
  Asm.addi a 1 1 (Asm.imm 1);
  Asm.cmpi a 1 (Asm.imm 1000);
  Asm.jnz a (Asm.lbl "warmup");
  (match bug with
  | `Wild_store_sweep ->
    Asm.movi a 2 (Asm.imm 0x80000);
    Asm.movi a 3 (Asm.imm 0xDEAD);
    Asm.label a "sweep";
    Asm.st a 2 0 3;
    Asm.addi a 2 2 (Asm.imm 4);
    Asm.cmpi a 2 (Asm.imm 0x90000);
    Asm.jnz a (Asm.lbl "sweep")
  | `Corrupt_iht ->
    Asm.movi a 2 (Asm.imm 0x3000);
    Asm.liht a 2;
    Asm.int_ a 40
  | `Jump_to_void ->
    Asm.movi a 2 (Asm.imm 0xFF000000);
    Asm.jr a 2);
  Asm.label a "after";
  Asm.jmp a (Asm.lbl "after");
  Asm.assemble a

let test_crash_guests_clean () =
  assert_clean "wild-store guest" (crash_guest `Wild_store_sweep) config;
  assert_clean "corrupt-iht guest" (crash_guest `Corrupt_iht) config;
  assert_clean "jump-to-void guest" (crash_guest `Jump_to_void) config

(* The capture-card bring-up guest from examples/device_bringup.ml: its
   card lives at ports 0x3C0.. which the example passes through, so the
   verifier must be told about them too. *)
let test_capture_guest_clean () =
  let port_base = 0x3C0 in
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a Isa.sp (Asm.imm 0x20000);
  Asm.movi a 1 (Asm.lbl "iht");
  Asm.liht a 1;
  Asm.movi a 2 (Asm.imm 0x50000);
  Asm.outi a (Asm.imm port_base) 2;
  Asm.movi a 2 (Asm.imm 1);
  Asm.outi a (Asm.imm (port_base + 1)) 2;
  Asm.sti a;
  Asm.label a "idle";
  Asm.hlt a;
  Asm.jmp a (Asm.lbl "idle");
  Asm.label a "field_handler";
  Asm.addi a 7 7 (Asm.imm 1);
  Asm.movi a 2 (Asm.imm 0x50000);
  Asm.ld a 8 2 0;
  Asm.movi a 2 (Asm.imm 0x20);
  Asm.outi a (Asm.imm Machine.Ports.pic) 2;
  Asm.iret a;
  Asm.align a 8;
  Asm.label a "iht";
  for v = 0 to 63 do
    if v = Isa.vec_irq_base_default + 3 then begin
      Asm.word a (Asm.lbl "field_handler");
      Asm.word a (Asm.imm 1)
    end
    else begin
      Asm.word a (Asm.imm 0);
      Asm.word a (Asm.imm 0)
    end
  done;
  let p = Asm.assemble a in
  let cfg_ =
    { config with Verifier.allowed_ports = (port_base, port_base + 2) :: Verifier.default_ports }
  in
  let r = Verifier.verify cfg_ p in
  (if not r.Verifier.clean then
     Alcotest.failf "capture guest should verify clean:\n%s"
       (Verifier.render ~symbols:(Symbols.of_program p) r));
  (* the gate handler must have been discovered as a root *)
  check bool "handler root" true
    (List.length (classes r) = 0 && r.Verifier.roots >= 2)

(* -- Report rendering / qV summary -- *)

let test_summary_format () =
  let p = Kernel.build (Kernel.default_config ~rate_mbps:0.) in
  let r = Verifier.verify config ~entry:Kernel.entry p in
  let s = Verifier.summary r in
  check bool "clean summary" true
    (String.length s >= 14 && String.sub s 0 14 = "analysis=clean");
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a 1 (Asm.imm 0);
  Asm.outi a (Asm.imm 0x7777) 1;
  let dirty = Verifier.verify config (Asm.assemble a) in
  let s = Verifier.summary dirty in
  check bool "dirty summary" true
    (String.length s >= 14 && String.sub s 0 14 = "analysis=dirty");
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check bool "first diagnostic listed" true (contains s "d0=")

let () =
  Alcotest.run "analysis"
    [
      ("domain", [ Alcotest.test_case "interval ops" `Quick test_domain_ops ]);
      ("cfg", [ Alcotest.test_case "shape" `Quick test_cfg_shape ]);
      ( "seeded-violations",
        [
          Alcotest.test_case "(a) monitor store" `Quick test_seed_monitor_store;
          Alcotest.test_case "(b) privileged at ring 3" `Quick
            test_seed_privileged_ring3;
          Alcotest.test_case "(c) unbalanced ret" `Quick test_seed_unbalanced_ret;
          Alcotest.test_case "(c) pop empty frame" `Quick test_seed_pop_empty;
          Alcotest.test_case "(d) text write" `Quick test_seed_text_write;
          Alcotest.test_case "(e) misaligned jump" `Quick
            test_seed_misaligned_jump;
          Alcotest.test_case "(e) fall off image" `Quick test_seed_fall_off;
          Alcotest.test_case "(f) port io" `Quick test_seed_port_io;
        ] );
      ( "clean-corpus",
        [
          Alcotest.test_case "shipped kernel" `Quick test_kernel_clean;
          Alcotest.test_case "user-mode kernel" `Quick
            test_kernel_user_mode_clean;
          Alcotest.test_case "crash-injection guests" `Quick
            test_crash_guests_clean;
          Alcotest.test_case "capture-card guest" `Quick
            test_capture_guest_clean;
        ] );
      ( "report",
        [ Alcotest.test_case "qV summary" `Quick test_summary_format ] );
    ]
