(* Tests for the guest-image static verifier: the abstract domain, CFG
   recovery, one seeded violation per diagnostic class (a)-(f), and the
   zero-false-positive corpus — the shipped guest kernel (both modes)
   and every guest program the examples build must verify clean. *)

module Asm = Vmm_hw.Asm
module Isa = Vmm_hw.Isa
module Machine = Vmm_hw.Machine
module Domain = Vmm_analysis.Domain
module Cfg = Vmm_analysis.Cfg
module Verifier = Vmm_analysis.Verifier
module Races = Vmm_analysis.Races
module Vm_layout = Core.Vm_layout
module Monitor = Core.Monitor
module Breakpoints = Core.Breakpoints
module Kernel = Vmm_guest.Kernel
module Symbols = Vmm_debugger.Symbols
module Session = Vmm_debugger.Session
module Bundle = Vmm_profile.Bundle

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* The monitor's view of a 16 MiB machine: guest owns everything below
   monitor_base (12 MiB). *)
let layout = Vm_layout.default ~mem_size:(16 * 1024 * 1024)

let config =
  {
    Verifier.guest_owns = Vm_layout.guest_owns layout;
    allowed_ports = Verifier.default_ports;
    entry_ring = 0;
  }

let classes (r : Verifier.report) =
  List.map (fun d -> d.Verifier.cls) r.diagnostics

let has cls (r : Verifier.report) = List.mem cls (classes r)

let assert_clean what (p : Asm.program) cfg_ =
  let r = Verifier.verify cfg_ p in
  if not r.Verifier.clean then
    Alcotest.failf "%s should verify clean:\n%s" what
      (Verifier.render ~symbols:(Symbols.of_program p) r)

(* -- Domain -- *)

let test_domain_ops () =
  (* constants are exact, wrap included *)
  check bool "wrap add" true
    (Domain.equal (Domain.add (Domain.const 0xFFFFFFFF) (Domain.const 2)) (Domain.const 1));
  check bool "const sub" true
    (Domain.equal (Domain.sub (Domain.const 4) (Domain.const 8)) (Domain.const 0xFFFFFFFC));
  (* intervals refuse to wrap *)
  check bool "iv add overflow" true
    (Domain.add (Domain.range 0 0xFFFFFFFF) (Domain.const 1) = Domain.Top);
  check bool "iv add" true
    (Domain.equal (Domain.add (Domain.range 16 32) (Domain.const 4)) (Domain.range 20 36));
  check bool "join hull" true
    (Domain.equal (Domain.join (Domain.const 4) (Domain.const 12)) (Domain.range 4 12));
  check bool "join top" true (Domain.join Domain.top (Domain.const 1) = Domain.Top);
  (* bitwise tracks constants only *)
  check bool "and const" true
    (Domain.equal (Domain.logand (Domain.const 0xFF) (Domain.const 0x0F)) (Domain.const 0x0F));
  check bool "and iv" true
    (Domain.logand (Domain.range 0 4) (Domain.const 1) = Domain.Top)

(* -- CFG recovery -- *)

let test_cfg_shape () =
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a 1 (Asm.imm 3);
  Asm.call a (Asm.lbl "double");
  Asm.label a "spin";
  Asm.jmp a (Asm.lbl "spin");
  Asm.label a "double";
  Asm.add a 1 1 1;
  Asm.ret a;
  let p = Asm.assemble a in
  let cfg = Cfg.create ~origin:p.Asm.origin p.Asm.code in
  Cfg.add_root cfg 0x1000;
  check int "instructions" 5 (Cfg.instruction_count cfg);
  check int "call edges" 1 (List.length (Cfg.calls cfg));
  check int "blocks" 3 (List.length (Cfg.blocks cfg));
  check bool "no issues" true (Cfg.issues cfg = []);
  check bool "text overlap" true
    (Cfg.overlaps_text cfg ~lo:0x1004 ~hi:0x1004);
  check bool "text miss" false
    (Cfg.overlaps_text cfg ~lo:(0x1000 + (5 * 8)) ~hi:(0x1000 + (5 * 8)))

(* -- Seeded violations, one per diagnostic class -- *)

(* (a) a bounded store into monitor-owned memory *)
let test_seed_monitor_store () =
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a 1 (Asm.imm layout.Vm_layout.monitor_base);
  Asm.movi a 2 (Asm.imm 0xDEAD);
  Asm.st a 1 0 2;
  Asm.label a "spin";
  Asm.jmp a (Asm.lbl "spin");
  let r = Verifier.verify config (Asm.assemble a) in
  check bool "dirty" false r.Verifier.clean;
  check bool "class a only" true (classes r = [ Verifier.Monitor_store ])

(* (b) boot irets into ring-3 code that runs a privileged instruction;
   exercises the constant-iret-frame root discovery as well *)
let test_seed_privileged_ring3 () =
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a Isa.sp (Asm.imm 0x8000);
  Asm.movi a 1 (Asm.imm 0x9000);
  Asm.push a 1 (* old sp *);
  Asm.movi a 1 (Asm.imm 0x3200);
  Asm.push a 1 (* flags: ring 3, IF *);
  Asm.movi a 1 (Asm.lbl "user");
  Asm.push a 1 (* return pc *);
  Asm.movi a 1 (Asm.imm 0);
  Asm.push a 1 (* error code *);
  Asm.iret a;
  Asm.label a "user";
  Asm.cli a;
  Asm.label a "uspin";
  Asm.jmp a (Asm.lbl "uspin");
  let p = Asm.assemble a in
  let r = Verifier.verify config p in
  check bool "class b only" true (classes r = [ Verifier.Privileged_reach ]);
  let d = List.hd r.Verifier.diagnostics in
  check int "flagged at the cli" (Asm.symbol p "user") d.Verifier.addr

(* (c) broken push/pop/ret discipline *)
let test_seed_unbalanced_ret () =
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a Isa.sp (Asm.imm 0x8000);
  Asm.movi a 1 (Asm.imm 5);
  Asm.push a 1;
  Asm.ret a;
  let r = Verifier.verify config (Asm.assemble a) in
  check bool "class c" true (has Verifier.Stack_unbalanced r)

let test_seed_pop_empty () =
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a Isa.sp (Asm.imm 0x8000);
  Asm.pop a 1;
  Asm.label a "spin";
  Asm.jmp a (Asm.lbl "spin");
  let r = Verifier.verify config (Asm.assemble a) in
  check bool "class c" true (has Verifier.Stack_unbalanced r)

(* (d) a store aimed into reachable text (self-modifying code) *)
let test_seed_text_write () =
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a 1 (Asm.lbl "spin");
  Asm.movi a 2 (Asm.imm 0);
  Asm.st a 1 0 2;
  Asm.label a "spin";
  Asm.jmp a (Asm.lbl "spin");
  let r = Verifier.verify config (Asm.assemble a) in
  check bool "class d only" true (classes r = [ Verifier.Text_write ])

(* (e) misaligned jump target, and fall-through off the image *)
let test_seed_misaligned_jump () =
  let a = Asm.create ~origin:0x1000 () in
  Asm.jmp a (Asm.imm 0x1004);
  let r = Verifier.verify config (Asm.assemble a) in
  check bool "class e only" true (classes r = [ Verifier.Control_flow ])

let test_seed_fall_off () =
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a 1 (Asm.imm 0);
  let r = Verifier.verify config (Asm.assemble a) in
  check bool "class e only" true (classes r = [ Verifier.Control_flow ])

(* (f) port I/O outside the machine's I/O bitmap *)
let test_seed_port_io () =
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a 1 (Asm.imm 0);
  Asm.outi a (Asm.imm 0x7777) 1;
  Asm.label a "spin";
  Asm.jmp a (Asm.lbl "spin");
  let r = Verifier.verify config (Asm.assemble a) in
  check bool "class f only" true (classes r = [ Verifier.Port_io ])

(* -- Zero false positives on everything we actually ship -- *)

let test_kernel_clean () =
  let p = Kernel.build (Kernel.default_config ~rate_mbps:100.) in
  let r = Verifier.verify config ~entry:Kernel.entry p in
  (if not r.Verifier.clean then
     Alcotest.failf "kernel should verify clean:\n%s"
       (Verifier.render ~symbols:(Symbols.of_program p) r));
  check bool "substantial" true (r.Verifier.instructions > 100);
  check bool "gates found" true (r.Verifier.roots > 1)

let test_kernel_user_mode_clean () =
  let cfgk = { (Kernel.default_config ~rate_mbps:100.) with Kernel.user_mode = true } in
  let p = Kernel.build cfgk in
  let r = Verifier.verify config ~entry:Kernel.entry p in
  (if not r.Verifier.clean then
     Alcotest.failf "user-mode kernel should verify clean:\n%s"
       (Verifier.render ~symbols:(Symbols.of_program p) r));
  (* the ring-3 application must have been discovered through the
     boot-time iret, on top of the entry point and the interrupt gates *)
  check bool "app root found" true (r.Verifier.roots >= 3)

(* The buggy guests from examples/crash_injection.ml (and bench's
   gauntlet): their bugs are data-dependent — a static verifier with a
   widening interval domain must stay conservative and silent. *)
let crash_guest bug =
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a Isa.sp (Asm.imm 0x20000);
  Asm.movi a 1 (Asm.imm 0);
  Asm.label a "warmup";
  Asm.addi a 1 1 (Asm.imm 1);
  Asm.cmpi a 1 (Asm.imm 1000);
  Asm.jnz a (Asm.lbl "warmup");
  (match bug with
  | `Wild_store_sweep ->
    Asm.movi a 2 (Asm.imm 0x80000);
    Asm.movi a 3 (Asm.imm 0xDEAD);
    Asm.label a "sweep";
    Asm.st a 2 0 3;
    Asm.addi a 2 2 (Asm.imm 4);
    Asm.cmpi a 2 (Asm.imm 0x90000);
    Asm.jnz a (Asm.lbl "sweep")
  | `Corrupt_iht ->
    Asm.movi a 2 (Asm.imm 0x3000);
    Asm.liht a 2;
    Asm.int_ a 40
  | `Jump_to_void ->
    Asm.movi a 2 (Asm.imm 0xFF000000);
    Asm.jr a 2);
  Asm.label a "after";
  Asm.jmp a (Asm.lbl "after");
  Asm.assemble a

let test_crash_guests_clean () =
  assert_clean "wild-store guest" (crash_guest `Wild_store_sweep) config;
  assert_clean "corrupt-iht guest" (crash_guest `Corrupt_iht) config;
  assert_clean "jump-to-void guest" (crash_guest `Jump_to_void) config

(* The capture-card bring-up guest from examples/device_bringup.ml: its
   card lives at ports 0x3C0.. which the example passes through, so the
   verifier must be told about them too. *)
let test_capture_guest_clean () =
  let port_base = 0x3C0 in
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a Isa.sp (Asm.imm 0x20000);
  Asm.movi a 1 (Asm.lbl "iht");
  Asm.liht a 1;
  Asm.movi a 2 (Asm.imm 0x50000);
  Asm.outi a (Asm.imm port_base) 2;
  Asm.movi a 2 (Asm.imm 1);
  Asm.outi a (Asm.imm (port_base + 1)) 2;
  Asm.sti a;
  Asm.label a "idle";
  Asm.hlt a;
  Asm.jmp a (Asm.lbl "idle");
  Asm.label a "field_handler";
  Asm.addi a 7 7 (Asm.imm 1);
  Asm.movi a 2 (Asm.imm 0x50000);
  Asm.ld a 8 2 0;
  Asm.movi a 2 (Asm.imm 0x20);
  Asm.outi a (Asm.imm Machine.Ports.pic) 2;
  Asm.iret a;
  Asm.align a 8;
  Asm.label a "iht";
  for v = 0 to 63 do
    if v = Isa.vec_irq_base_default + 3 then begin
      Asm.word a (Asm.lbl "field_handler");
      Asm.word a (Asm.imm 1)
    end
    else begin
      Asm.word a (Asm.imm 0);
      Asm.word a (Asm.imm 0)
    end
  done;
  let p = Asm.assemble a in
  let cfg_ =
    { config with Verifier.allowed_ports = (port_base, port_base + 2) :: Verifier.default_ports }
  in
  let r = Verifier.verify cfg_ p in
  (if not r.Verifier.clean then
     Alcotest.failf "capture guest should verify clean:\n%s"
       (Verifier.render ~symbols:(Symbols.of_program p) r));
  (* the gate handler must have been discovered as a root *)
  check bool "handler root" true
    (List.length (classes r) = 0 && r.Verifier.roots >= 2)

(* -- Report rendering / qV summary -- *)

let test_summary_format () =
  let p = Kernel.build (Kernel.default_config ~rate_mbps:0.) in
  let r = Verifier.verify config ~entry:Kernel.entry p in
  let s = Verifier.summary r in
  check bool "clean summary" true
    (String.length s >= 14 && String.sub s 0 14 = "analysis=clean");
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a 1 (Asm.imm 0);
  Asm.outi a (Asm.imm 0x7777) 1;
  let dirty = Verifier.verify config (Asm.assemble a) in
  let s = Verifier.summary dirty in
  check bool "dirty summary" true
    (String.length s >= 14 && String.sub s 0 14 = "analysis=dirty");
  check bool "first diagnostic listed" true (contains s "d0=");
  check bool "summary counters present" true
    (contains s "summaries=" && contains s "races=")

(* -- Interprocedural race pass: seeded corpus -- *)

(* A guest whose mainline runs an unmasked load/add/store on a shared
   counter while the timer gate's handler touches the same word.  The
   knobs select the clean variants the pass must stay silent on. *)
let race_guest ?(mask = `None) ?(handler_shares = true) () =
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a Isa.sp (Asm.imm 0x20000);
  Asm.movi a 1 (Asm.lbl "iht");
  Asm.liht a 1;
  (* periodic timer: ~1.2 kHz so the dynamic witness has many shots *)
  Asm.movi a 2 (Asm.imm 1000);
  Asm.outi a (Asm.imm Machine.Ports.pit) 2;
  Asm.movi a 2 (Asm.imm 0);
  Asm.outi a (Asm.imm (Machine.Ports.pit + 1)) 2;
  Asm.movi a 2 (Asm.imm 1);
  Asm.outi a (Asm.imm (Machine.Ports.pit + 2)) 2;
  Asm.sti a;
  (match mask with
  | `None -> ()
  | `Cli -> Asm.cli a
  | `Nested ->
    Asm.cli a;
    Asm.cli a);
  Asm.movi a 2 (Asm.imm 0x6000);
  Asm.label a "rmw_load";
  Asm.ld a 3 2 0;
  Asm.addi a 3 3 (Asm.imm 1);
  Asm.label a "rmw_store";
  Asm.st a 2 0 3;
  Asm.jmp a (Asm.lbl "rmw_load");
  Asm.label a "timer_handler";
  Asm.movi a 4 (Asm.imm (if handler_shares then 0x6000 else 0x7000));
  Asm.ld a 5 4 0;
  Asm.addi a 5 5 (Asm.imm 1);
  Asm.st a 4 0 5;
  Asm.movi a 6 (Asm.imm 0x20);
  Asm.outi a (Asm.imm Machine.Ports.pic) 6;
  Asm.iret a;
  Asm.align a 8;
  Asm.label a "iht";
  for v = 0 to 63 do
    if v = Isa.vec_irq_base_default + Machine.Irq.timer then begin
      Asm.word a (Asm.lbl "timer_handler");
      Asm.word a (Asm.imm 1)
    end
    else begin
      Asm.word a (Asm.imm 0);
      Asm.word a (Asm.imm 0)
    end
  done;
  Asm.assemble a

let test_seed_irq_race () =
  let p = race_guest () in
  let r = Verifier.verify config p in
  check bool "class g only" true (classes r = [ Verifier.Irq_race ]);
  let d = List.hd r.Verifier.diagnostics in
  check int "flagged at the store" (Asm.symbol p "rmw_store") d.Verifier.addr;
  (match r.Verifier.race_sites with
   | [ s ] ->
     check int "load pc" (Asm.symbol p "rmw_load") s.Races.load_pc;
     check int "store pc" (Asm.symbol p "rmw_store") s.Races.store_pc;
     check int "window lo" 0x6000 s.Races.lo;
     check int "window hi" 0x6003 s.Races.hi;
     check int "vector"
       (Isa.vec_irq_base_default + Machine.Irq.timer)
       s.Races.vector;
     check int "handler" (Asm.symbol p "timer_handler") s.Races.handler;
     check bool "handler writes" true s.Races.handler_writes
   | sites -> Alcotest.failf "expected one race site, got %d" (List.length sites))

let test_race_masked_clean () =
  (* cli before the RMW closes the window; the pass must stay silent *)
  assert_clean "masked RMW guest" (race_guest ~mask:`Cli ()) config;
  assert_clean "nested-cli RMW guest" (race_guest ~mask:`Nested ()) config

let test_race_disjoint_clean () =
  (* the handler touches a different word: footprints do not intersect *)
  assert_clean "disjoint-handler guest" (race_guest ~handler_shares:false ()) config

(* (h) a helper whose cli/sti effect depends on the path taken *)
let test_seed_divergent_mask () =
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a Isa.sp (Asm.imm 0x8000);
  Asm.call a (Asm.lbl "maybe_sti");
  Asm.label a "spin";
  Asm.jmp a (Asm.lbl "spin");
  Asm.label a "maybe_sti";
  Asm.cmpi a 1 (Asm.imm 0);
  Asm.jz a (Asm.lbl "skip");
  Asm.sti a;
  Asm.label a "skip";
  Asm.ret a;
  let p = Asm.assemble a in
  let r = Verifier.verify config p in
  check bool "class h only" true (classes r = [ Verifier.Unbalanced_mask ]);
  let d = List.hd r.Verifier.diagnostics in
  check int "flagged at the ret" (Asm.symbol p "skip") d.Verifier.addr

(* (h) hlt reachable only with interrupts masked: the classic wedge *)
let test_seed_hlt_wedge () =
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a Isa.sp (Asm.imm 0x8000);
  Asm.label a "idle";
  Asm.hlt a;
  Asm.jmp a (Asm.lbl "idle");
  let p = Asm.assemble a in
  let r = Verifier.verify config p in
  check bool "class h only" true (classes r = [ Verifier.Unbalanced_mask ]);
  let d = List.hd r.Verifier.diagnostics in
  check int "flagged at the hlt" (Asm.symbol p "idle") d.Verifier.addr

(* Jr degrades the enclosing summary to advisory instead of guessing *)
let test_jr_summary_incomplete () =
  let r = Verifier.verify config (crash_guest `Jump_to_void) in
  check bool "still clean" true r.Verifier.clean;
  check bool "summary flagged incomplete" true
    (r.Verifier.summary_incomplete >= 1)

let test_kernel_summaries () =
  let p = Kernel.build (Kernel.default_config ~rate_mbps:100.) in
  let r = Verifier.verify config ~entry:Kernel.entry p in
  check bool "summaries computed" true (r.Verifier.summaries >= 3);
  check bool "kernel summaries complete" true
    (r.Verifier.summary_incomplete = 0);
  check bool "no race sites in kernel" true (r.Verifier.race_sites = [])

(* -- Race-site wire format -- *)

let test_site_roundtrip () =
  let site =
    {
      Races.load_pc = 0x1040;
      store_pc = 0x1050;
      lo = 0x6000;
      hi = 0x6003;
      vector = 35;
      handler = 0x2000;
      handler_writes = true;
    }
  in
  List.iter
    (fun (status, windows) ->
      let line = Races.render_site ~status ~windows site in
      match Races.parse_site line with
      | Some (s, st, w) ->
        check bool "site fields survive" true (s = site);
        check Alcotest.string "status survives" status st;
        check int "windows survive" windows w
      | None -> Alcotest.failf "rendered site did not parse: %s" line)
    [ ("static", 0); ("witnessed", 17) ];
  check bool "garbage rejected" true (Races.parse_site "not a site" = None)

(* -- Fixpoint termination & determinism on random instruction soups -- *)

let reg_gen = QCheck.Gen.int_bound 15
let imm_gen = QCheck.Gen.map (fun v -> v land 0xFFFFFFFF) QCheck.Gen.int

let instr_gen : Isa.instr QCheck.Gen.t =
  let open QCheck.Gen in
  let r = reg_gen and i = imm_gen in
  oneof
    [
      return Isa.Nop;
      return Isa.Hlt;
      map2 (fun a b -> Isa.Movi (a, b)) r i;
      map2 (fun a b -> Isa.Mov (a, b)) r r;
      map3 (fun a b c -> Isa.Add (a, b, c)) r r r;
      map3 (fun a b c -> Isa.Addi (a, b, c)) r r i;
      map3 (fun a b c -> Isa.Sub (a, b, c)) r r r;
      map3 (fun a b c -> Isa.And_ (a, b, c)) r r r;
      map3 (fun a b c -> Isa.Or_ (a, b, c)) r r r;
      map3 (fun a b c -> Isa.Xor_ (a, b, c)) r r r;
      map3 (fun a b c -> Isa.Shl (a, b, c)) r r r;
      map3 (fun a b c -> Isa.Shr (a, b, c)) r r r;
      map3 (fun a b c -> Isa.Mul (a, b, c)) r r r;
      map2 (fun a b -> Isa.Cmp (a, b)) r r;
      map2 (fun a b -> Isa.Cmpi (a, b)) r i;
      map3 (fun a b c -> Isa.Ld (a, b, c)) r r i;
      map3 (fun a b c -> Isa.St (a, b, c)) r i r;
      map3 (fun a b c -> Isa.Ldb (a, b, c)) r r i;
      map3 (fun a b c -> Isa.Stb (a, b, c)) r i r;
      map (fun a -> Isa.Jmp a) i;
      map (fun a -> Isa.Jz a) i;
      map (fun a -> Isa.Jnz a) i;
      map (fun a -> Isa.Jlt a) i;
      map (fun a -> Isa.Jge a) i;
      map (fun a -> Isa.Jb a) i;
      map (fun a -> Isa.Jae a) i;
      map (fun a -> Isa.Jr a) r;
      map (fun a -> Isa.Call a) i;
      return Isa.Ret;
      map (fun a -> Isa.Push a) r;
      map (fun a -> Isa.Pop a) r;
      map2 (fun a b -> Isa.In_ (a, b)) r r;
      map2 (fun a b -> Isa.Ini (a, b)) r i;
      map2 (fun a b -> Isa.Out (a, b)) r r;
      map2 (fun a b -> Isa.Outi (a, b)) i r;
      map (fun v -> Isa.Int_ (v land 0x3F)) (int_bound 63);
      return Isa.Iret;
      return Isa.Sti;
      return Isa.Cli;
      map (fun a -> Isa.Liht a) r;
      map (fun a -> Isa.Lptb a) r;
      map2 (fun a b -> Isa.Lstk (a land 15, b)) (int_bound 15) r;
      return Isa.Tlbflush;
      map3 (fun a b c -> Isa.Copy (a, b, c)) r r r;
      map3 (fun a b c -> Isa.Csum (a, b, c)) r r r;
      map (fun a -> Isa.Rdtsc a) r;
      map (fun a -> Isa.Vmcall a) i;
      return Isa.Brk;
    ]

let soup_arbitrary =
  QCheck.make
    QCheck.Gen.(list_size (int_range 1 64) instr_gen)
    ~print:(fun l -> String.concat "; " (List.map Isa.to_string l))

let prop_fixpoint_deterministic =
  QCheck.Test.make ~name:"interprocedural fixpoint terminates, deterministic"
    ~count:300 soup_arbitrary (fun instrs ->
      let image = Bytes.concat Bytes.empty (List.map Isa.encode instrs) in
      (* termination: both runs return at all; determinism: identically *)
      let r1 = Verifier.verify_image config ~origin:0x1000 image in
      let r2 = Verifier.verify_image config ~origin:0x1000 image in
      r1 = r2)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

(* -- Dynamic cross-validation: static sites witnessed end to end -- *)

(* Pin virtual-breakpoint mode: observe-only sites are a no-op under
   [Patch], and [Breakpoints.create] reads LWVMM_BP at install time. *)
let with_virtual_mode f =
  let prev = Sys.getenv_opt "LWVMM_BP" in
  Unix.putenv "LWVMM_BP" "virtual";
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "LWVMM_BP" (Option.value prev ~default:"virtual"))
    f

let test_witnessed_race () =
  with_virtual_mode @@ fun () ->
  let m = Machine.create ~mem_size:(16 * 1024 * 1024) () in
  let mon = Monitor.install m in
  Monitor.set_race_witness mon true;
  let p = race_guest () in
  Monitor.boot_guest mon p ~entry:0x1000;
  check int "one site armed" 1 (Monitor.race_witness_sites mon);
  (* deterministic simulation: run until the timer lands inside the
     window (bounded so a regression fails rather than hangs) *)
  let rec run n =
    if n > 0 && Monitor.race_witnessed mon = 0 then begin
      Machine.run_seconds m 0.01;
      run (n - 1)
    end
  in
  run 100;
  check bool "windows observed" true (Monitor.race_windows mon > 0);
  check bool "race witnessed" true (Monitor.race_witnessed mon > 0);
  (* the qV payload carries the witness trailer over the wire *)
  let session = Session.attach m in
  (match Session.query_verify session with
   | Some (text, fields) ->
     check bool "irq-race diagnostic" true (contains text "irq-race");
     check (Alcotest.option Alcotest.string) "witness armed" (Some "on")
       (List.assoc_opt "witness" fields);
     check (Alcotest.option Alcotest.string) "one site sampled" (Some "1")
       (List.assoc_opt "wsites" fields);
     (match List.assoc_opt "wseen" fields with
      | Some n -> check bool "witnessed over the wire" true (int_of_string n > 0)
      | None -> Alcotest.fail "missing wseen field");
     check bool "per-site token" true
       (contains text
          (Printf.sprintf "w0=0x%x:" (Asm.symbol p "rmw_store")))
   | None -> Alcotest.fail "no qV reply");
  (* the flight ring records both window opens and the interleaving *)
  let flight = Monitor.flight_report mon in
  check bool "window note" true (contains flight "race.window");
  check bool "witness note" true (contains flight "race.witness");
  (* crash bundles carry the static-races section, parseable per line *)
  Monitor.inject mon Monitor.Iht_clobber;
  Machine.run_seconds m 0.02;
  check bool "guest crashed" true (Monitor.crashed mon);
  (match Monitor.crash_bundle mon with
   | Some bundle ->
     (match Bundle.find_section bundle "static-races" with
      | Some body ->
        let lines =
          List.filter (fun l -> String.length l > 0) (String.split_on_char '\n' body)
        in
        (match lines with
         | header :: rest ->
           check bool "section header" true (contains header "sites=1");
           let parsed = List.filter_map Races.parse_site rest in
           check int "every site line parses" (List.length rest)
             (List.length parsed);
           check bool "witnessed status in bundle" true
             (List.exists (fun (_, status, _) -> status = "witnessed") parsed)
         | [] -> Alcotest.fail "static-races section empty")
      | None -> Alcotest.fail "static-races section missing")
   | None -> Alcotest.fail "crash produced no bundle")

let test_observe_sites_survive_detach () =
  (* stub detach clears the breakpoint table; observe-only sites stay *)
  let b = Breakpoints.create ~mode:Breakpoints.Virtual () in
  check bool "observe armed" true (Breakpoints.add_observe b ~addr:0x1040);
  check bool "bp armed" true (Breakpoints.add b ~addr:0x1080 ~saved:"");
  ignore (Breakpoints.clear b);
  check bool "bp gone" false (Breakpoints.mem b ~addr:0x1080);
  check bool "observe survives" true (Breakpoints.observe_mem b ~addr:0x1040);
  check bool "page still armed" true (Breakpoints.page_armed b ~page:0x1040);
  check bool "disarm" true (Breakpoints.remove_observe b ~addr:0x1040);
  check bool "page released" false (Breakpoints.page_armed b ~page:0x1040)

let () =
  Alcotest.run "analysis"
    [
      ("domain", [ Alcotest.test_case "interval ops" `Quick test_domain_ops ]);
      ("cfg", [ Alcotest.test_case "shape" `Quick test_cfg_shape ]);
      ( "seeded-violations",
        [
          Alcotest.test_case "(a) monitor store" `Quick test_seed_monitor_store;
          Alcotest.test_case "(b) privileged at ring 3" `Quick
            test_seed_privileged_ring3;
          Alcotest.test_case "(c) unbalanced ret" `Quick test_seed_unbalanced_ret;
          Alcotest.test_case "(c) pop empty frame" `Quick test_seed_pop_empty;
          Alcotest.test_case "(d) text write" `Quick test_seed_text_write;
          Alcotest.test_case "(e) misaligned jump" `Quick
            test_seed_misaligned_jump;
          Alcotest.test_case "(e) fall off image" `Quick test_seed_fall_off;
          Alcotest.test_case "(f) port io" `Quick test_seed_port_io;
        ] );
      ( "clean-corpus",
        [
          Alcotest.test_case "shipped kernel" `Quick test_kernel_clean;
          Alcotest.test_case "user-mode kernel" `Quick
            test_kernel_user_mode_clean;
          Alcotest.test_case "crash-injection guests" `Quick
            test_crash_guests_clean;
          Alcotest.test_case "capture-card guest" `Quick
            test_capture_guest_clean;
        ] );
      ( "races",
        [
          Alcotest.test_case "(g) unmasked rmw vs handler" `Quick
            test_seed_irq_race;
          Alcotest.test_case "masked rmw clean" `Quick test_race_masked_clean;
          Alcotest.test_case "disjoint handler clean" `Quick
            test_race_disjoint_clean;
          Alcotest.test_case "(h) divergent mask" `Quick
            test_seed_divergent_mask;
          Alcotest.test_case "(h) hlt wedge" `Quick test_seed_hlt_wedge;
          Alcotest.test_case "jr degrades summary" `Quick
            test_jr_summary_incomplete;
          Alcotest.test_case "kernel summaries" `Quick test_kernel_summaries;
          Alcotest.test_case "site wire round-trip" `Quick test_site_roundtrip;
        ] );
      ("fixpoint", qsuite [ prop_fixpoint_deterministic ]);
      ( "witness",
        [
          Alcotest.test_case "static site witnessed end to end" `Quick
            test_witnessed_race;
          Alcotest.test_case "observe sites survive detach" `Quick
            test_observe_sites_survive_detach;
        ] );
      ( "report",
        [ Alcotest.test_case "qV summary" `Quick test_summary_format ] );
    ]
