(* Tests for the discrete-event substrate: event queue ordering and
   cancellation, engine clock semantics, PRNG determinism and statistics. *)

module Event_queue = Vmm_sim.Event_queue
module Engine = Vmm_sim.Engine
module Rng = Vmm_sim.Rng
module Stats = Vmm_sim.Stats
module Trace = Vmm_sim.Trace

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* -- Event queue -- *)

let test_queue_order () =
  let q = Event_queue.create () in
  ignore (Event_queue.add q ~time:30L "c");
  ignore (Event_queue.add q ~time:10L "a");
  ignore (Event_queue.add q ~time:20L "b");
  check (Alcotest.option (Alcotest.pair Alcotest.int64 Alcotest.string))
    "first" (Some (10L, "a")) (Event_queue.pop q);
  check (Alcotest.option (Alcotest.pair Alcotest.int64 Alcotest.string))
    "second" (Some (20L, "b")) (Event_queue.pop q);
  check (Alcotest.option (Alcotest.pair Alcotest.int64 Alcotest.string))
    "third" (Some (30L, "c")) (Event_queue.pop q);
  check bool "empty" true (Event_queue.is_empty q)

let test_queue_fifo_ties () =
  let q = Event_queue.create () in
  ignore (Event_queue.add q ~time:5L "first");
  ignore (Event_queue.add q ~time:5L "second");
  ignore (Event_queue.add q ~time:5L "third");
  let order =
    List.init 3 (fun _ ->
        match Event_queue.pop q with Some (_, v) -> v | None -> "?")
  in
  check (Alcotest.list Alcotest.string) "insertion order"
    [ "first"; "second"; "third" ] order

let test_queue_cancel () =
  let q = Event_queue.create () in
  let h1 = Event_queue.add q ~time:1L "a" in
  let _h2 = Event_queue.add q ~time:2L "b" in
  check bool "cancel live" true (Event_queue.cancel q h1);
  check bool "cancel dead" false (Event_queue.cancel q h1);
  check int "length after cancel" 1 (Event_queue.length q);
  check (Alcotest.option (Alcotest.pair Alcotest.int64 Alcotest.string))
    "skips cancelled" (Some (2L, "b")) (Event_queue.pop q)

let test_queue_peek () =
  let q = Event_queue.create () in
  check (Alcotest.option Alcotest.int64) "empty peek" None
    (Event_queue.peek_time q);
  let h = Event_queue.add q ~time:7L () in
  check (Alcotest.option Alcotest.int64) "peek" (Some 7L)
    (Event_queue.peek_time q);
  ignore (Event_queue.cancel q h);
  check (Alcotest.option Alcotest.int64) "peek after cancel" None
    (Event_queue.peek_time q)

let test_queue_clear () =
  let q = Event_queue.create () in
  for i = 1 to 100 do
    ignore (Event_queue.add q ~time:(Int64.of_int i) i)
  done;
  Event_queue.clear q;
  check bool "cleared" true (Event_queue.is_empty q);
  check (Alcotest.option Alcotest.int64) "no peek" None (Event_queue.peek_time q)

let prop_queue_sorted =
  QCheck.Test.make ~name:"pop order is nondecreasing in time" ~count:200
    QCheck.(list (int_bound 10000))
    (fun times ->
      let q = Event_queue.create () in
      List.iter (fun t -> ignore (Event_queue.add q ~time:(Int64.of_int t) t)) times;
      let rec drain last =
        match Event_queue.pop q with
        | None -> true
        | Some (t, _) -> if Int64.compare t last < 0 then false else drain t
      in
      drain Int64.min_int)

let prop_queue_conserves =
  QCheck.Test.make ~name:"every added event pops exactly once" ~count:200
    QCheck.(list (int_bound 1000))
    (fun times ->
      let q = Event_queue.create () in
      List.iter (fun t -> ignore (Event_queue.add q ~time:(Int64.of_int t) ())) times;
      let rec drain n = match Event_queue.pop q with None -> n | Some _ -> drain (n + 1) in
      drain 0 = List.length times)

(* Model-based test: the heap must agree with a naive list reference under
   arbitrary interleavings of add/cancel/pop/clear — including the in-place
   compaction that [cancel] triggers once most cells are dead.  Payloads are
   insertion ids, so FIFO tie-breaking is "smallest id wins" in the model. *)
let prop_queue_model =
  QCheck.Test.make ~name:"heap agrees with reference model" ~count:300
    QCheck.(list (pair (int_bound 5) (int_bound 1000)))
    (fun ops ->
      let q = Event_queue.create () in
      let handles = ref [] in (* (handle, id), newest first; never pruned *)
      let model = ref [] in (* live (time, id) *)
      let next_id = ref 0 in
      let ok = ref true in
      let expect b = if not b then ok := false in
      let drop id = model := List.filter (fun (_, i) -> i <> id) !model in
      let min_live () =
        List.fold_left
          (fun acc e ->
            match acc with
            | Some best when best < e -> acc
            | _ -> Some e)
          None !model
      in
      let pop_and_check () =
        match Event_queue.pop q with
        | None -> expect (!model = [])
        | Some (t, id) ->
          expect (min_live () = Some (Int64.to_int t, id));
          drop id
      in
      List.iter
        (fun (op, x) ->
          match op with
          | 0 | 1 | 2 ->
            let id = !next_id in
            incr next_id;
            let h = Event_queue.add q ~time:(Int64.of_int x) id in
            handles := (h, id) :: !handles;
            model := (x, id) :: !model
          | 3 -> (
            (* cancel an arbitrary handle, possibly already dead — the
               return value must report whether it was still live *)
            match !handles with
            | [] -> ()
            | hs ->
              let h, id = List.nth hs (x mod List.length hs) in
              let was_live = List.exists (fun (_, i) -> i = id) !model in
              expect (Event_queue.cancel q h = was_live);
              drop id)
          | 4 -> pop_and_check ()
          | _ ->
            Event_queue.clear q;
            model := [])
        ops;
      expect (Event_queue.length q = List.length !model);
      while not (Event_queue.is_empty q) do
        pop_and_check ()
      done;
      expect (!model = []);
      !ok)

(* Deterministic compaction stress: cancelling 90 of 100 events crosses the
   mostly-dead threshold and rebuilds the heap in place; the survivors must
   still pop in order and dead handles must stay dead. *)
let test_queue_compaction () =
  let q = Event_queue.create () in
  let handles =
    Array.init 100 (fun i -> Event_queue.add q ~time:(Int64.of_int i) i)
  in
  for i = 0 to 89 do
    ignore (Event_queue.cancel q handles.(i))
  done;
  check int "live length" 10 (Event_queue.length q);
  for i = 90 to 99 do
    match Event_queue.pop q with
    | Some (t, v) ->
      check int "payload order" i v;
      check Alcotest.int64 "time order" (Int64.of_int i) t
    | None -> Alcotest.fail "queue drained early"
  done;
  check bool "empty after drain" true (Event_queue.is_empty q);
  check bool "dead handle stays dead" false (Event_queue.cancel q handles.(0))

(* -- Engine -- *)

let test_engine_run_until () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.at e ~time:10L (fun () -> log := 10 :: !log));
  ignore (Engine.at e ~time:5L (fun () -> log := 5 :: !log));
  ignore (Engine.at e ~time:50L (fun () -> log := 50 :: !log));
  Engine.run_until e ~time:20L;
  check (Alcotest.list int) "events up to 20" [ 5; 10 ] (List.rev !log);
  check Alcotest.int64 "clock at horizon" 20L (Engine.now e);
  check int "one pending" 1 (Engine.pending e)

let test_engine_cascade () =
  (* An event scheduling another event at the same time must still run. *)
  let e = Engine.create () in
  let hits = ref 0 in
  ignore
    (Engine.at e ~time:10L (fun () ->
         incr hits;
         ignore (Engine.at e ~time:10L (fun () -> incr hits))));
  Engine.run_until e ~time:10L;
  check int "both fired" 2 !hits

let test_engine_past_clamps () =
  let e = Engine.create () in
  Engine.advance e 100L;
  let fired = ref false in
  ignore (Engine.at e ~time:50L (fun () -> fired := true));
  ignore (Engine.dispatch_due e);
  check bool "past event fires immediately" true !fired

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.after e ~delay:10L (fun () -> fired := true) in
  check bool "cancelled" true (Engine.cancel e h);
  Engine.run_until e ~time:100L;
  check bool "did not fire" false !fired

let test_engine_run_until_idle () =
  let e = Engine.create () in
  for i = 1 to 5 do
    ignore (Engine.after e ~delay:(Int64.of_int i) (fun () -> ()))
  done;
  check int "ran all" 5 (Engine.run_until_idle e);
  check int "queue empty" 0 (Engine.pending e)

(* -- RNG -- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:42L and b = Rng.create ~seed:42L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.bits32 a) (Rng.bits32 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create ~seed:1L and b = Rng.create ~seed:2L in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Rng.bits32 a) (Rng.bits32 b) then incr same
  done;
  check bool "streams diverge" true (!same < 8)

let test_rng_int_range () =
  let r = Rng.create ~seed:7L in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    check bool "in range" true (v >= 0 && v < 17)
  done

let test_rng_split_independent () =
  let r = Rng.create ~seed:9L in
  let a = Rng.split r in
  let first = List.init 16 (fun _ -> Rng.bits32 a) in
  (* Drawing from the parent must not change the child's past. *)
  check bool "child already diverged" true
    (List.exists (fun v -> not (Int64.equal v 0L)) first)

let prop_rng_float_range =
  QCheck.Test.make ~name:"float draws stay in [0, bound)" ~count:200
    QCheck.(pair (int_bound 1000) pos_float)
    (fun (seed, bound) ->
      QCheck.assume (bound > 0.0 && bound < 1e10);
      let r = Rng.create ~seed:(Int64.of_int seed) in
      let v = Rng.float r bound in
      v >= 0.0 && v < bound)

let test_rng_exponential_mean () =
  let r = Rng.create ~seed:1234L in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential r ~mean:5.0
  done;
  let mean = !sum /. float_of_int n in
  check bool "mean near 5" true (abs_float (mean -. 5.0) < 0.3)

(* -- Stats -- *)

let test_stats_counter () =
  let c = Stats.counter "x" in
  Stats.incr c;
  Stats.incr c;
  Stats.add c 10L;
  check Alcotest.int64 "value" 12L (Stats.counter_value c);
  Stats.reset_counter c;
  check Alcotest.int64 "reset" 0L (Stats.counter_value c)

let test_stats_load () =
  let l = Stats.load () in
  Stats.note_busy l 25L;
  Stats.note_busy l 25L;
  check (Alcotest.float 1e-9) "utilization" 0.5
    (Stats.utilization l ~elapsed:100L);
  check (Alcotest.float 1e-9) "clamped" 1.0 (Stats.utilization l ~elapsed:10L);
  check (Alcotest.float 1e-9) "zero elapsed" 0.0 (Stats.utilization l ~elapsed:0L)

let test_stats_histogram () =
  let h = Stats.histogram ~buckets:10 ~width:1.0 in
  List.iter (Stats.observe h) [ 0.5; 1.5; 1.7; 9.5; 100.0 ];
  check int "count" 5 (Stats.histogram_count h);
  let counts = Stats.bucket_counts h in
  check int "bucket 0" 1 counts.(0);
  check int "bucket 1" 2 counts.(1);
  check int "overflow" 1 counts.(10);
  check bool "median in bucket 1..2" true
    (let p = Stats.percentile h 50.0 in
     p >= 1.0 && p <= 2.0)

let test_stats_percentile_pins () =
  let empty = Stats.histogram ~buckets:4 ~width:10.0 in
  check (Alcotest.float 1e-9) "empty histogram" 0.0
    (Stats.percentile empty 50.0);
  let one = Stats.histogram ~buckets:4 ~width:10.0 in
  Stats.observe one 17.0;
  (* A single sample reports as its bucket's midpoint: 17 lands in
     [10, 20), midpoint 15. *)
  check (Alcotest.float 1e-9) "one sample -> bucket midpoint" 15.0
    (Stats.percentile one 50.0);
  check (Alcotest.float 1e-9) "every percentile agrees" 15.0
    (Stats.percentile one 99.0);
  let over = Stats.histogram ~buckets:4 ~width:10.0 in
  Stats.observe over 1000.0;
  (* Overflow reports the documented nominal midpoint (buckets + 0.5) *
     width — an underestimate, but a pinned one. *)
  check (Alcotest.float 1e-9) "overflow -> nominal midpoint" 45.0
    (Stats.percentile over 50.0)

let test_stats_reset_histogram () =
  let h = Stats.histogram ~buckets:4 ~width:10.0 in
  List.iter (Stats.observe h) [ 5.0; 15.0; 99.0 ];
  Stats.reset_histogram h;
  check int "count zeroed" 0 (Stats.histogram_count h);
  check int "buckets zeroed" 0 (Array.fold_left ( + ) 0 (Stats.bucket_counts h));
  check (Alcotest.float 1e-9) "percentile of empty" 0.0
    (Stats.percentile h 50.0)

let test_stats_categories () =
  let l = Stats.load () in
  Stats.note_busy l 10L;
  Stats.with_category l "mon_cpu" (fun () ->
      Stats.note_busy l 5L;
      Stats.with_category l "irq" (fun () -> Stats.note_busy l 3L);
      Stats.note_busy l 2L);
  check Alcotest.string "restored" Stats.default_category (Stats.category l);
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int64))
    "per-category totals"
    [ ("guest", 10L); ("irq", 3L); ("mon_cpu", 7L) ]
    (Stats.busy_by_category l);
  check Alcotest.int64 "categories sum to busy" (Stats.busy_cycles l)
    (List.fold_left
       (fun acc (_, v) -> Int64.add acc v)
       0L (Stats.busy_by_category l));
  (* exception safety: category restored even when the body raises *)
  (try Stats.with_category l "stub" (fun () -> failwith "boom")
   with Failure _ -> ());
  check Alcotest.string "restored after raise" Stats.default_category
    (Stats.category l)

(* -- Trace -- *)

let test_trace_ring () =
  let t = Trace.create ~capacity:3 () in
  for i = 1 to 5 do
    Trace.emit t ~time:(Int64.of_int i) ~component:"dev" ~severity:Trace.Info
      (string_of_int i)
  done;
  check int "retains capacity" 3 (Trace.count t);
  check int "total emitted" 5 (Trace.total t);
  let msgs = List.map (fun r -> r.Trace.message) (Trace.records t) in
  check (Alcotest.list Alcotest.string) "keeps most recent" [ "3"; "4"; "5" ]
    msgs

let test_trace_find () =
  let t = Trace.create ~capacity:10 () in
  Trace.emit t ~time:1L ~component:"nic" ~severity:Trace.Info "tx";
  Trace.emit t ~time:2L ~component:"pic" ~severity:Trace.Warn "mask";
  Trace.emit t ~time:3L ~component:"nic" ~severity:Trace.Error "drop";
  check int "filtered" 2 (List.length (Trace.find t ~component:"nic"))

let test_trace_level_filter () =
  let t = Trace.create ~capacity:10 () in
  Trace.set_level t Trace.Info;
  Trace.emit t ~time:1L ~component:"dev" ~severity:Trace.Debug "chatty";
  Trace.emit t ~time:2L ~component:"dev" ~severity:Trace.Info "kept";
  Trace.emit t ~time:3L ~component:"dev" ~severity:Trace.Error "kept too";
  (* Below-threshold emission is a no-op: not stored, not even counted. *)
  check int "stored" 2 (Trace.count t);
  check int "not counted either" 2 (Trace.total t);
  Trace.set_level t Trace.Debug;
  Trace.emit t ~time:4L ~component:"dev" ~severity:Trace.Debug "now kept";
  check int "debug kept after lowering" 3 (Trace.count t)

let test_trace_find_min_severity () =
  let t = Trace.create ~capacity:10 () in
  Trace.emit t ~time:1L ~component:"nic" ~severity:Trace.Debug "d";
  Trace.emit t ~time:2L ~component:"nic" ~severity:Trace.Warn "w";
  Trace.emit t ~time:3L ~component:"nic" ~severity:Trace.Error "e";
  Trace.emit t ~time:4L ~component:"pic" ~severity:Trace.Error "other";
  check int "warn and up" 2
    (List.length (Trace.find ~min_severity:Trace.Warn t ~component:"nic"));
  check int "unfiltered" 3 (List.length (Trace.find t ~component:"nic"))

let test_trace_fields () =
  let t = Trace.create ~capacity:10 () in
  Trace.emit t ~time:1L ~component:"mon" ~severity:Trace.Info
    ~fields:[ ("vector", "32"); ("pc", "0x1000") ]
    "reflect";
  match Trace.records t with
  | [ r ] ->
    check
      (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
      "fields kept"
      [ ("vector", "32"); ("pc", "0x1000") ]
      r.Trace.fields;
    let rendered = Format.asprintf "%a" Trace.pp_record r in
    check bool "fields rendered" true
      (let contains s sub =
         let n = String.length sub in
         let rec go i =
           i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
         in
         go 0
       in
       contains rendered "vector=32" && contains rendered "pc=0x1000")
  | rs -> Alcotest.failf "expected one record, got %d" (List.length rs)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "vmm_sim"
    [
      ( "event_queue",
        [
          Alcotest.test_case "ordering" `Quick test_queue_order;
          Alcotest.test_case "fifo on ties" `Quick test_queue_fifo_ties;
          Alcotest.test_case "cancellation" `Quick test_queue_cancel;
          Alcotest.test_case "peek" `Quick test_queue_peek;
          Alcotest.test_case "clear" `Quick test_queue_clear;
          Alcotest.test_case "compaction" `Quick test_queue_compaction;
        ]
        @ qsuite [ prop_queue_sorted; prop_queue_conserves; prop_queue_model ] );
      ( "engine",
        [
          Alcotest.test_case "run_until horizon" `Quick test_engine_run_until;
          Alcotest.test_case "same-time cascade" `Quick test_engine_cascade;
          Alcotest.test_case "past clamps to now" `Quick test_engine_past_clamps;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "run_until_idle" `Quick test_engine_run_until_idle;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "exponential mean" `Slow test_rng_exponential_mean;
        ]
        @ qsuite [ prop_rng_float_range ] );
      ( "stats",
        [
          Alcotest.test_case "counter" `Quick test_stats_counter;
          Alcotest.test_case "load" `Quick test_stats_load;
          Alcotest.test_case "histogram" `Quick test_stats_histogram;
          Alcotest.test_case "percentile pins" `Quick
            test_stats_percentile_pins;
          Alcotest.test_case "reset histogram" `Quick
            test_stats_reset_histogram;
          Alcotest.test_case "cycle categories" `Quick test_stats_categories;
        ] );
      ( "trace",
        [
          Alcotest.test_case "ring eviction" `Quick test_trace_ring;
          Alcotest.test_case "find by component" `Quick test_trace_find;
          Alcotest.test_case "severity filter" `Quick test_trace_level_filter;
          Alcotest.test_case "find min severity" `Quick
            test_trace_find_min_severity;
          Alcotest.test_case "structured fields" `Quick test_trace_fields;
        ] );
    ]
