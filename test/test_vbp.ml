(* Page-permission virtual breakpoints: armed pages map no-execute in
   the shadow tables and the monitor fields the exec faults, so guest
   memory is never mutated.  This suite pins the integrity guarantees —
   pristine text under a self-checksumming guest, self-modifying stores
   that neither corrupt the program nor disarm the site, exact-boundary
   faults out of chained superblocks, survival across warm restart, and
   bit-exact record/replay of break-ins — plus the dual-mode table API
   itself.  Mode is forced per test via LWVMM_BP so the suite means the
   same thing no matter which mode the surrounding CI matrix selects. *)

module Machine = Vmm_hw.Machine
module Cpu = Vmm_hw.Cpu
module Isa = Vmm_hw.Isa
module Asm = Vmm_hw.Asm
module Uart = Vmm_hw.Uart
module Costs = Vmm_hw.Costs
module Packet = Vmm_proto.Packet
module Command = Vmm_proto.Command
module Monitor = Core.Monitor
module Stub = Core.Stub
module Breakpoints = Core.Breakpoints
module Snapshot = Core.Snapshot
module Kernel = Vmm_guest.Kernel
module Session = Vmm_debugger.Session
module Recorder = Vmm_replay.Recorder
module Event = Vmm_replay.Event
module Registry = Vmm_obs.Registry

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let test_costs = { Costs.default with Costs.uart_cycles_per_byte = 2000 }

(* [Breakpoints.create] reads LWVMM_BP; pin it per test so assertions
   about a specific mode hold regardless of the environment. *)
let with_mode mode f =
  let prev = Sys.getenv_opt "LWVMM_BP" in
  Unix.putenv "LWVMM_BP" mode;
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "LWVMM_BP" (Option.value prev ~default:"virtual"))
    f

let fresh () =
  let m = Machine.create ~mem_size:(16 * 1024 * 1024) ~costs:test_costs () in
  let mon = Monitor.install m in
  (m, mon)

let reg m r = Cpu.read_reg (Machine.cpu m) r

(* -- Wire-level host (same harness as test_core) -- *)

type host = {
  send : string -> unit;
  inbox : Packet.event Queue.t;
}

let attach_host m =
  let uart = Machine.uart m in
  let decoder = Packet.decoder () in
  let inbox = Queue.create () in
  Uart.set_on_tx uart (fun b ->
      match Packet.feed decoder b with
      | Some e -> Queue.add e inbox
      | None -> ());
  let send s = String.iter (fun c -> Uart.inject_rx uart (Char.code c)) s in
  { send; inbox }

let send_command host cmd =
  host.send (Packet.frame (Command.command_to_wire cmd))

let rec next_reply ?(tries = 200) m host =
  match Queue.take_opt host.inbox with
  | Some (Packet.Packet p) -> Command.reply_of_wire p
  | Some (Packet.Ack | Packet.Nak | Packet.Bad_checksum) ->
    next_reply ~tries m host
  | None ->
    if tries = 0 then None
    else begin
      Machine.run_seconds m 0.002;
      next_reply ~tries:(tries - 1) m host
    end

let expect_ok m host what =
  match next_reply m host with
  | Some Command.Ok_reply -> ()
  | _ -> Alcotest.failf "expected OK for %s" what

let expect_break m host what =
  match next_reply m host with
  | Some (Command.Stopped (Command.Break addr)) -> addr
  | _ -> Alcotest.failf "expected break notification (%s)" what

(* -- Dual-mode table API -- *)

let test_table_dual_mode () =
  with_mode "virtual" @@ fun () ->
  check bool "env selects virtual" true
    (Breakpoints.mode_of_env () = Breakpoints.Virtual);
  let b = Breakpoints.create () in
  check bool "default mode from env" true
    (Breakpoints.mode b = Breakpoints.Virtual);
  let p = Breakpoints.create ~mode:Breakpoints.Patch () in
  check bool "explicit mode wins" true (Breakpoints.mode p = Breakpoints.Patch);
  (* page accounting: two sites on one page, one on another *)
  check bool "add a" true (Breakpoints.add b ~addr:0x1010 ~saved:"");
  check bool "add b" true (Breakpoints.add b ~addr:0x1ff8 ~saved:"");
  check bool "add c" true (Breakpoints.add b ~addr:0x3000 ~saved:"");
  check bool "page armed" true (Breakpoints.page_armed b ~page:0x1234);
  check bool "other page" false (Breakpoints.page_armed b ~page:0x2000);
  check (Alcotest.list int) "armed pages sorted" [ 0x1000; 0x3000 ]
    (Breakpoints.armed_pages b);
  (* removing one of two sites keeps the page armed *)
  ignore (Breakpoints.remove b ~addr:0x1010);
  check bool "still armed" true (Breakpoints.page_armed b ~page:0x1000);
  ignore (Breakpoints.remove b ~addr:0x1ff8);
  check bool "page released" false (Breakpoints.page_armed b ~page:0x1000);
  ignore (Breakpoints.clear b);
  check (Alcotest.list int) "clear drops pages" [] (Breakpoints.armed_pages b);
  check bool "patch env" true
    (with_mode "patch" (fun () ->
         Breakpoints.mode_of_env () = Breakpoints.Patch))

(* -- Self-checksumming guest: armed text reads pristine -- *)

(* The guest repeatedly checksums its own text (which includes the armed
   site) into r3 and counts laps in r7.  The armed site itself is dead
   code behind the loop's jmp, so the guest never stops — but it fetches
   from the armed page on every lap, exercising the step-through path. *)
let checksum_guest () =
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a Isa.sp (Asm.imm 0x20000);
  Asm.movi a 1 (Asm.imm 0x1000);
  Asm.movi a 2 (Asm.imm 0x100);
  Asm.label a "loop";
  Asm.csum a 3 1 2;
  Asm.addi a 7 7 (Asm.imm 1);
  Asm.jmp a (Asm.lbl "loop");
  Asm.label a "deadcode";
  Asm.nop a;
  Asm.assemble a

let run_checksum mode ~armed =
  with_mode mode @@ fun () ->
  let m, mon = fresh () in
  let p = checksum_guest () in
  Monitor.boot_guest mon p ~entry:0x1000;
  if armed then begin
    let host = attach_host m in
    Machine.run_seconds m 0.002;
    send_command host (Command.Insert_breakpoint (Asm.symbol p "deadcode"));
    expect_ok m host "Z0"
  end;
  Machine.run_seconds m 0.05;
  check bool "guest made laps" true (reg m 7 > 2);
  reg m 3

let test_self_checksumming_guest () =
  let baseline = run_checksum "virtual" ~armed:false in
  check bool "virtual arm is invisible to csum" true
    (run_checksum "virtual" ~armed:true = baseline);
  (* the contrast that motivates the design: a patch-mode plant changes
     the bytes the guest can see *)
  check bool "patch plant perturbs csum" true
    (run_checksum "patch" ~armed:true <> baseline)

(* -- Self-modifying guest: stores neither corrupt nor disarm -- *)

(* The guest overwrites an armed instruction with [movi r1, 99] before
   reaching it.  In virtual mode the store must land (no BRK byte to
   collide with), the next hit must still report, and resuming must
   execute the guest's new instruction. *)
let test_self_modifying_armed_site () =
  with_mode "virtual" @@ fun () ->
  let m, mon = fresh () in
  let enc = Isa.encode (Isa.Movi (1, 99)) in
  let word off =
    Char.code (Bytes.get enc off)
    lor (Char.code (Bytes.get enc (off + 1)) lsl 8)
    lor (Char.code (Bytes.get enc (off + 2)) lsl 16)
    lor (Char.code (Bytes.get enc (off + 3)) lsl 24)
  in
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a Isa.sp (Asm.imm 0x20000);
  (* wait for the host's go signal at 0x18000 *)
  Asm.movi a 4 (Asm.imm 0x18000);
  Asm.label a "wait";
  Asm.ld a 5 4 0;
  Asm.cmpi a 5 (Asm.imm 1);
  Asm.jnz a (Asm.lbl "wait");
  (* overwrite the armed site with movi r1, 99 *)
  Asm.movi a 6 (Asm.imm (word 0));
  Asm.movi a 7 (Asm.imm (word 4));
  Asm.movi a 8 (Asm.lbl "patchme");
  Asm.st a 8 0 6;
  Asm.st a 8 4 7;
  Asm.jmp a (Asm.lbl "patchme");
  Asm.label a "patchme";
  Asm.movi a 1 (Asm.imm 1);
  Asm.label a "spin";
  Asm.jmp a (Asm.lbl "spin");
  let p = Asm.assemble a in
  Monitor.boot_guest mon p ~entry:0x1000;
  let host = attach_host m in
  Machine.run_seconds m 0.002;
  let site = Asm.symbol p "patchme" in
  send_command host (Command.Insert_breakpoint site);
  expect_ok m host "Z0";
  (* release the guest: it self-modifies, then runs into the site *)
  send_command host (Command.Write_memory { addr = 0x18000; data = "\x01\x00\x00\x00" });
  expect_ok m host "go";
  check int "hit at the rewritten site" site (expect_break m host "first hit");
  (* the host reads the guest's NEW bytes — the store landed untouched *)
  send_command host (Command.Read_memory { addr = site; len = Isa.width });
  (match next_reply m host with
   | Some (Command.Memory data) ->
     check bool "store visible, not corrupted" true
       (Isa.decode ~addr:site (Bytes.of_string data) ~off:0 = Isa.Movi (1, 99))
   | _ -> Alcotest.fail "expected memory");
  (* the store did not disarm the site *)
  check bool "site still armed" true
    (Breakpoints.mem (Stub.breakpoints (Monitor.stub mon)) ~addr:site);
  send_command host Command.Continue;
  expect_ok m host "continue";
  Machine.run_seconds m 0.02;
  check int "guest's new instruction executed" 99 (reg m 1)

(* -- JIT: a chained superblock faults at the exact boundary pc -- *)

let test_superblock_nx_boundary () =
  with_mode "virtual" @@ fun () ->
  let m, mon = fresh () in
  Cpu.set_jit_enabled (Machine.cpu m) true;
  (* hot loop on page 0x1000 chaining into page 0x2000 and back *)
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a Isa.sp (Asm.imm 0x20000);
  Asm.label a "loop";
  Asm.addi a 7 7 (Asm.imm 1);
  Asm.jmp a (Asm.lbl "tail");
  Asm.space a (0x1000 - (Asm.here a - 0x1000));
  (* -- page boundary: 0x2000 -- *)
  Asm.label a "tail";
  Asm.addi a 6 6 (Asm.imm 1);
  Asm.jmp a (Asm.lbl "loop");
  let p = Asm.assemble a in
  check int "tail heads the second page" 0x2000 (Asm.symbol p "tail");
  Monitor.boot_guest mon p ~entry:0x1000;
  Machine.run_seconds m 0.01 (* compile + chain both blocks *);
  let cpu = Machine.cpu m in
  check bool "blocks compiled" true (Cpu.blocks_compiled cpu > 0);
  check bool "superblock chains followed" true (Cpu.block_chain_follows cpu > 0);
  (* arm the chain target: the next chain-follow must fault exactly at
     0x2000, not run a stale compiled block through the armed page *)
  let host = attach_host m in
  send_command host (Command.Insert_breakpoint 0x2000);
  expect_ok m host "Z0";
  check int "fault at exact boundary pc" 0x2000 (expect_break m host "NX chain");
  check int "pc parked on the boundary" 0x2000 (Cpu.pc cpu);
  (* transparent to the program: resume and the loop keeps counting *)
  send_command host (Command.Remove_breakpoint 0x2000);
  expect_ok m host "z0";
  send_command host Command.Continue;
  expect_ok m host "continue";
  let laps = reg m 7 in
  Machine.run_seconds m 0.01;
  check bool "loop still live" true (reg m 7 > laps)

(* -- Warm restart: armed virtual breakpoints survive R -- *)

let test_warm_restart_keeps_vbps () =
  with_mode "virtual" @@ fun () ->
  let m = Machine.create ~mem_size:(16 * 1024 * 1024) ~costs:test_costs () in
  let mon = Monitor.install m in
  let program = Kernel.build (Kernel.default_config ~rate_mbps:20.0) in
  Monitor.boot_guest mon program ~entry:Kernel.entry;
  Machine.run_seconds m 0.01;
  let session = Session.attach m in
  let target = Asm.symbol program "timer_handler" in
  check bool "insert" true (Session.insert_breakpoint session target);
  (match Session.wait_stop ~timeout_s:1.0 session with
   | Some (Command.Break a) -> check int "hit before restart" target a
   | _ -> Alcotest.fail "expected a hit before restart");
  (match Session.restart session with
   | Session.Restarted -> ()
   | _ -> Alcotest.fail "restart failed");
  (* no re-plant happened (nothing to re-plant in virtual mode); the
     armed table re-arms the fresh shadow lazily *)
  (match Session.wait_stop ~timeout_s:1.0 session with
   | Some (Command.Break a) -> check int "hit after restart" target a
   | _ -> Alcotest.fail "virtual breakpoint should survive the restart");
  check bool "remove" true (Session.remove_breakpoint session target);
  Session.continue_ session;
  Machine.run_seconds m 0.05;
  let c = Kernel.read_counters (Machine.mem m) program in
  check bool "guest healthy after restart" true (c.Kernel.ticks > 0)

(* -- Record/replay: virtual break-ins replay bit-exactly -- *)

(* One scripted debug campaign: run, hit an armed virtual breakpoint
   twice, detach, run free.  Recording it and replaying the trace must
   converge on the identical final-state digest with zero divergence,
   and the trace must carry the Vbp_hit events. *)
let vbp_campaign ?replay () =
  with_mode "virtual" @@ fun () ->
  let m = Machine.create ~mem_size:(16 * 1024 * 1024) ~costs:test_costs () in
  let recorder = Machine.recorder m in
  (match replay with
   | None -> Recorder.start_record recorder
   | Some events -> Recorder.start_replay recorder events);
  let mon = Monitor.install m in
  let program = Kernel.build (Kernel.default_config ~rate_mbps:20.0) in
  Monitor.boot_guest mon program ~entry:Kernel.entry;
  let session = Session.attach m in
  Machine.run_seconds m 0.005;
  let target = Asm.symbol program "timer_handler" in
  ignore (Session.insert_breakpoint session target);
  (match Session.wait_stop ~timeout_s:1.0 session with
   | Some (Command.Break _) -> ()
   | _ -> Alcotest.fail "expected first recorded hit");
  Session.continue_ session;
  (match Session.wait_stop ~timeout_s:1.0 session with
   | Some (Command.Break _) -> ()
   | _ -> Alcotest.fail "expected second recorded hit");
  ignore (Session.remove_breakpoint session target);
  Session.continue_ session;
  Machine.run_seconds m 0.02;
  let digest = Snapshot.Full.digest (Monitor.checkpoint_now mon) in
  let divergence =
    match replay with
    | Some _ -> Recorder.finish_replay recorder
    | None -> None
  in
  let events = Recorder.recorded recorder in
  Recorder.stop recorder;
  (events, digest, divergence)

let test_record_replay_vbp_hits () =
  let events, digest, _ = vbp_campaign () in
  let hits =
    List.filter
      (fun e -> match e.Event.payload with Event.Vbp_hit _ -> true | _ -> false)
      events
  in
  check int "two break-ins on the trace" 2 (List.length hits);
  let _, digest', div = vbp_campaign ~replay:events () in
  (match div with
   | Some d ->
     Alcotest.failf "vbp replay diverged: %s"
       (Format.asprintf "%a" Recorder.pp_divergence d)
   | None -> ());
  check bool "replay digest identical" true (digest' = digest)

(* -- Metrics: the bp_virtual_* gauges are live -- *)

let test_vbp_metrics () =
  with_mode "virtual" @@ fun () ->
  let m, mon = fresh () in
  let p = checksum_guest () in
  Monitor.boot_guest mon p ~entry:0x1000;
  let host = attach_host m in
  Machine.run_seconds m 0.002;
  send_command host (Command.Insert_breakpoint (Asm.symbol p "deadcode"));
  expect_ok m host "Z0";
  Machine.run_seconds m 0.02 (* step-throughs accumulate *);
  let snap = Registry.snapshot (Machine.registry m) in
  let gauge name =
    match List.assoc_opt name snap with
    | Some (Registry.Gauge v) -> int_of_float v
    | _ -> Alcotest.failf "missing gauge %s" name
  in
  check int "mode gauge says virtual" 1 (gauge "bp_virtual_mode");
  check int "one armed site" 1 (gauge "bp_virtual_armed_sites");
  check int "one armed page" 1 (gauge "bp_virtual_armed_pages");
  check bool "exec faults counted" true (gauge "bp_virtual_exec_faults_total" > 0);
  check bool "step-throughs counted" true
    (gauge "bp_virtual_step_throughs_total" > 0);
  check int "no hits (dead code site)" 0 (gauge "bp_virtual_hits_total")

let () =
  Alcotest.run "vmm_vbp"
    [
      ( "table",
        [ Alcotest.test_case "dual-mode API" `Quick test_table_dual_mode ] );
      ( "integrity",
        [
          Alcotest.test_case "self-checksumming guest" `Quick
            test_self_checksumming_guest;
          Alcotest.test_case "self-modifying armed site" `Quick
            test_self_modifying_armed_site;
        ] );
      ( "jit",
        [
          Alcotest.test_case "superblock NX boundary" `Quick
            test_superblock_nx_boundary;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "warm restart keeps vbps" `Quick
            test_warm_restart_keeps_vbps;
        ] );
      ( "replay",
        [
          Alcotest.test_case "record/replay break-ins" `Quick
            test_record_replay_vbp_hits;
        ] );
      ( "metrics",
        [ Alcotest.test_case "gauges live" `Quick test_vbp_metrics ] );
    ]
