#!/bin/sh
# Nondeterminism lint: all randomness must flow through seeded
# Vmm_sim.Rng streams and all time through the simulation engine —
# a stray stdlib RNG draw or wall-clock read silently breaks the
# record/replay guarantee (docs/REPLAY.md).
#
# Fails on `Random.`, `Unix.gettimeofday` or `Sys.time` anywhere in the
# source tree, except:
#   - lib/sim/rng.ml (the sanctioned seeded generator), and
#   - lines carrying a `determinism-ok` marker with a justification
#     (host-side wall-clock measurement that never feeds the sim).
set -eu
cd "$(dirname "$0")/.."

bad=$(grep -rn 'Random\.\|Unix\.gettimeofday\|Sys\.time' \
        lib bin bench test examples \
      | grep -v '^lib/sim/rng\.ml:' \
      | grep -v 'determinism-ok' || true)

if [ -n "$bad" ]; then
  echo "determinism check FAILED — stdlib RNG / wall clock outside Vmm_sim.Rng:" >&2
  echo "$bad" >&2
  echo "Route randomness through Vmm_sim.Rng and time through the engine," >&2
  echo "or mark a justified host-side use with 'determinism-ok: <why>'." >&2
  exit 1
fi
echo "determinism check passed"
