(* Benchmark harness: one target per experiment in DESIGN.md.

     dune exec bench/main.exe                 -- run everything
     dune exec bench/main.exe -- fig3.1       -- the paper's figure
     dune exec bench/main.exe -- headline     -- 5.4x / 26% numbers
     dune exec bench/main.exe -- stability    -- E3 fault-injection matrix
     dune exec bench/main.exe -- gauntlet     -- randomized multi-fault campaigns
     dune exec bench/main.exe -- customize    -- E4 environment comparison
     dune exec bench/main.exe -- debugload    -- E5 debugging under load
     dune exec bench/main.exe -- ablation-trap         -- E6
     dune exec bench/main.exe -- ablation-passthrough  -- E7
     dune exec bench/main.exe -- micro        -- M1 bechamel microbenches
     dune exec bench/main.exe -- profile      -- continuous-profiler overhead
     dune exec bench/main.exe -- analysis     -- M3 static-verifier throughput *)

module Machine = Vmm_hw.Machine
module Cpu = Vmm_hw.Cpu
module Asm = Vmm_hw.Asm
module Isa = Vmm_hw.Isa
module Costs = Vmm_hw.Costs
module Uart = Vmm_hw.Uart
module Packet = Vmm_proto.Packet
module Command = Vmm_proto.Command
module Monitor = Core.Monitor
module Kernel = Vmm_guest.Kernel
module Workload = Vmm_harness.Workload
module Session = Vmm_debugger.Session
module Embedded = Vmm_baseline.Embedded_debugger
module Hw_simulator = Vmm_baseline.Hw_simulator

module Json = Vmm_obs.Json

let section title =
  Printf.printf "\n==================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==================================================\n"

(* ---------------------------------------------------------------- *)
(* Run telemetry: machine-readable result files next to the console  *)
(* tables, so CI and notebooks consume the same run.                 *)
(* ---------------------------------------------------------------- *)

(* Resolve HEAD by reading .git directly: no subprocess, and a missing
   repo (running from an export) degrades to "unknown". *)
let git_rev () =
  let read_line path =
    try
      let ic = open_in path in
      let line = try input_line ic with End_of_file -> "" in
      close_in ic;
      Some (String.trim line)
    with Sys_error _ -> None
  in
  match read_line ".git/HEAD" with
  | Some head when String.length head > 5 && String.sub head 0 5 = "ref: " ->
    let r = String.sub head 5 (String.length head - 5) in
    (match read_line (Filename.concat ".git" r) with
     | Some rev when rev <> "" -> rev
     | _ -> "unknown")
  | Some rev when rev <> "" -> rev
  | _ -> "unknown"

let write_json path json =
  let oc = open_out path in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\n[telemetry] wrote %s\n" path

let measurement_json (m : Workload.measurement) =
  let idle =
    Int64.sub m.Workload.elapsed_cycles m.Workload.busy_cycles
  in
  Json.Obj
    [
      ("system", Json.String (Workload.system_name m.Workload.system));
      ("requested_mbps", Json.Float m.Workload.requested_mbps);
      ("achieved_mbps", Json.Float m.Workload.achieved_mbps);
      ("cpu_load", Json.Float m.Workload.cpu_load);
      ("duration_s", Json.Float m.Workload.duration_s);
      ("frames", Json.Int m.Workload.frames);
      ("busy_cycles", Json.Int (Int64.to_int m.Workload.busy_cycles));
      ("elapsed_cycles", Json.Int (Int64.to_int m.Workload.elapsed_cycles));
      ("idle_cycles", Json.Int (Int64.to_int idle));
      ( "breakdown",
        Json.Obj
          (List.map
             (fun (cat, v) -> (cat, Json.Int (Int64.to_int v)))
             m.Workload.breakdown) );
      ("irq_latency_p50_cycles", Json.Float m.Workload.irq_latency_p50);
      ("irq_latency_p99_cycles", Json.Float m.Workload.irq_latency_p99);
    ]

let run_header bench =
  [
    ("bench", Json.String bench);
    ("git_rev", Json.String (git_rev ()));
    ("seed", Json.Int 0);
    ("cpu_hz", Json.Float Costs.default.Costs.cpu_hz);
  ]

(* ---------------------------------------------------------------- *)
(* E1 — Fig 3.1: CPU load vs transfer rate on the three systems.    *)
(* ---------------------------------------------------------------- *)

(* BENCH_FIG31_RATES=25,100 overrides the sweep — CI smoke runs a short
   one and still exercises the full telemetry path. *)
let fig3_1_rates =
  match Sys.getenv_opt "BENCH_FIG31_RATES" with
  | Some spec ->
    let rates =
      String.split_on_char ',' spec
      |> List.filter_map (fun tok -> float_of_string_opt (String.trim tok))
    in
    if rates = [] then failwith "BENCH_FIG31_RATES: no valid rates" else rates
  | None ->
    [ 25.0; 50.0; 100.0; 150.0; 200.0; 300.0; 400.0; 500.0; 600.0; 700.0 ]

let fig3_1 () =
  section
    "E1 / Fig 3.1 -- CPU load (%) vs transfer rate (Mbps)\n\
     ('*' marks saturation: achieved < 95% of requested)";
  Printf.printf "%10s %12s %12s %12s\n" "rate_mbps" "real_hw" "lw_vmm"
    "vmware_like";
  let cell (m : Workload.measurement) =
    Printf.sprintf "%5.1f%%%s"
      (100.0 *. m.Workload.cpu_load)
      (if m.Workload.achieved_mbps < 0.95 *. m.Workload.requested_mbps then "*"
       else " ")
  in
  let results =
    List.map
      (fun rate ->
        let row =
          List.map
            (fun sys ->
              let m, _ = Workload.run sys ~rate_mbps:rate ~duration_s:0.25 in
              m)
            Workload.all_systems
        in
        (match row with
         | [ bare; lw; full ] ->
           Printf.printf "%10.0f %12s %12s %12s\n" rate (cell bare) (cell lw)
             (cell full)
         | _ -> assert false);
        (rate, row))
      fig3_1_rates
  in
  (* a small ASCII rendering of the figure *)
  Printf.printf "\n  CPU load\n";
  let series =
    [
      (Workload.Bare_metal, 'R');
      (Workload.Lightweight_vmm, 'L');
      (Workload.Hosted_full_vmm, 'V');
    ]
  in
  for percent = 10 downto 0 do
    Printf.printf "  %3d%% |" (percent * 10);
    List.iter
      (fun (_rate, row) ->
        let ch = ref ' ' in
        let mark_for sys mark =
          match List.find_opt (fun m -> m.Workload.system = sys) row with
          | Some m ->
            if
              int_of_float ((100.0 *. m.Workload.cpu_load /. 10.0) +. 0.5)
              = percent
            then ch := mark
          | None -> ()
        in
        List.iter (fun (sys, mark) -> mark_for sys mark) series;
        Printf.printf "  %c  " !ch)
      results;
    print_newline ()
  done;
  Printf.printf "       +";
  List.iter (fun _ -> Printf.printf "-----") results;
  Printf.printf "\n        ";
  List.iter (fun (rate, _) -> Printf.printf "%4.0f " rate) results;
  Printf.printf
    " Mbps\n  R = real hardware, L = lightweight VMM, V = VMware-like full VMM\n";
  write_json "BENCH_fig31.json"
    (Json.Obj
       (run_header "fig3.1"
       @ [
           ( "rates",
             Json.List
               (List.map
                  (fun (rate, row) ->
                    Json.Obj
                      [
                        ("rate_mbps", Json.Float rate);
                        ( "environments",
                          Json.List (List.map measurement_json row) );
                      ])
                  results) );
         ]))

(* ---------------------------------------------------------------- *)
(* E2 — headline ratios.                                            *)
(* ---------------------------------------------------------------- *)

let headline () =
  section "E2 -- maximum sustainable transfer rate (paper Section 3 text)";
  let max_of sys =
    Workload.max_sustainable_rate ~duration_s:0.2 sys ~lo:5.0 ~hi:1000.0
      ~steps:11
  in
  let bare = max_of Workload.Bare_metal in
  let lw = max_of Workload.Lightweight_vmm in
  let full = max_of Workload.Hosted_full_vmm in
  Printf.printf "%-28s %10.1f Mbps\n" "real hardware" bare;
  Printf.printf "%-28s %10.1f Mbps\n" "lightweight VMM" lw;
  Printf.printf "%-28s %10.1f Mbps\n" "VMware-like full VMM" full;
  Printf.printf "\n%-40s %8.2fx   (paper: 5.4x)\n"
    "lightweight VMM vs full VMM" (lw /. full);
  Printf.printf "%-40s %7.1f%%   (paper: ~26%%)\n"
    "lightweight VMM vs real hardware"
    (100.0 *. lw /. bare);
  write_json "BENCH_headline.json"
    (Json.Obj
       (run_header "headline"
       @ [
           ("bare_metal_mbps", Json.Float bare);
           ("lightweight_vmm_mbps", Json.Float lw);
           ("full_vmm_mbps", Json.Float full);
           ("lw_vs_full_ratio", Json.Float (lw /. full));
           ("lw_vs_bare_ratio", Json.Float (lw /. bare));
         ]))

(* ---------------------------------------------------------------- *)
(* E3 — stability under injected guest failure.                     *)
(* ---------------------------------------------------------------- *)

let bench_costs = { Costs.default with Costs.uart_cycles_per_byte = 2000 }

let buggy_guest bug =
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a Isa.sp (Asm.imm 0x20000);
  (match bug with
   | `Wild_store ->
     Asm.movi a 2 (Asm.imm 0x80000);
     Asm.movi a 3 (Asm.imm 0xDEAD);
     Asm.label a "sweep";
     Asm.st a 2 0 3;
     Asm.addi a 2 2 (Asm.imm 4);
     Asm.cmpi a 2 (Asm.imm 0x90000);
     Asm.jnz a (Asm.lbl "sweep")
   | `Corrupt_iht ->
     Asm.movi a 2 (Asm.imm 0x3000);
     Asm.liht a 2;
     Asm.int_ a 40
   | `Jump_void ->
     Asm.movi a 2 (Asm.imm 0xFF000000);
     Asm.jr a 2
   | `Mask_interrupts ->
     (* guest masks every interrupt line, then hangs with interrupts off:
        a debugger relying on the guest's interrupt plumbing is cut off *)
     Asm.movi a 2 (Asm.imm 0xFF);
     Asm.outi a (Asm.imm (Machine.Ports.pic + 1)) 2;
     Asm.cli a);
  Asm.label a "spin";
  Asm.jmp a (Asm.lbl "spin");
  Asm.assemble a

let bug_name = function
  | `Wild_store -> "wild store sweep"
  | `Corrupt_iht -> "interrupt table corrupted"
  | `Jump_void -> "jump into unmapped memory"
  | `Mask_interrupts -> "guest masks all interrupts"

let lw_survives bug =
  let machine =
    Machine.create ~mem_size:(16 * 1024 * 1024) ~costs:bench_costs ()
  in
  let monitor = Monitor.install machine in
  Monitor.boot_guest monitor (buggy_guest bug) ~entry:0x1000;
  let session = Session.attach machine in
  Machine.run_seconds machine 0.05;
  match Session.read_registers session with Some _ -> true | None -> false

let embedded_survives bug =
  let machine =
    Machine.create ~mem_size:(16 * 1024 * 1024) ~costs:bench_costs ()
  in
  let agent = Embedded.attach machine ~region:0x80000 in
  Machine.boot machine (buggy_guest bug) ~entry:0x1000;
  (try Machine.run_seconds machine 0.05
   with Cpu.Panic _ -> Embedded.mark_machine_dead agent);
  String.iter
    (fun c -> Uart.inject_rx (Machine.uart machine) (Char.code c))
    (Packet.frame (Command.command_to_wire Command.Read_registers));
  Embedded.service agent > 0

let stability () =
  section "E3 -- debugger availability after injected OS bugs";
  Printf.printf "%-32s %18s %18s\n" "injected bug" "lightweight VMM"
    "embedded debugger";
  List.iter
    (fun bug ->
      let verdict b = if b then "ALIVE" else "DEAD" in
      Printf.printf "%-32s %18s %18s\n" (bug_name bug)
        (verdict (lw_survives bug))
        (verdict (embedded_survives bug)))
    [ `Wild_store; `Corrupt_iht; `Jump_void; `Mask_interrupts ];
  Printf.printf
    "\nExpected: the monitor's stub survives every fault (paper claim 1);\n\
     the embedded debugger dies whenever its resources are touched.\n"

(* ---------------------------------------------------------------- *)
(* Gauntlet — randomized multi-fault campaigns with recovery.       *)
(* ---------------------------------------------------------------- *)

(* Each campaign boots a fresh streaming guest under the monitor with
   the watchdog armed, then throws 2-4 overlapping fault classes at it
   from a seeded schedule.  Survival means the stub keeps answering
   probes within the timeout through the whole campaign and, after
   recovery (reconnects for link damage, a warm restart for a crashed
   or wedged guest), a full debug round-trip still works.  The embedded
   baseline faces an equivalent per-campaign fault mix and is expected
   to die whenever guest faults touch its resources.  Knobs:
     BENCH_GAUNTLET_N              campaigns (default 50)
     BENCH_GAUNTLET_SEED           base seed (campaign i uses base + i)
     BENCH_GAUNTLET_TRACE_DIR      drop failing campaigns' replay traces
     BENCH_GAUNTLET_VERIFY_REPLAY  1: record-then-replay every campaign  *)

module Plan = Vmm_fault.Plan
module Chaos = Vmm_fault.Chaos
module Rng = Vmm_sim.Rng
module Recorder = Vmm_replay.Recorder
module Trace = Vmm_replay.Trace
module Snapshot = Core.Snapshot

let gauntlet_n =
  match Sys.getenv_opt "BENCH_GAUNTLET_N" with
  | Some s -> (try max 1 (int_of_string (String.trim s)) with _ -> 50)
  | None -> 50

let gauntlet_base_seed =
  match Sys.getenv_opt "BENCH_GAUNTLET_SEED" with
  | Some s -> (try Int64.of_string (String.trim s) with _ -> 0xC0FFEEL)
  | None -> 0xC0FFEEL

(* Every campaign records its nondeterministic events.  A campaign that
   does not survive drops its trace into BENCH_GAUNTLET_TRACE_DIR (when
   set) as a replayable artifact -- CI uploads these so the exact failing
   run can be re-executed offline with [lwvmm_dbg replay].
   BENCH_GAUNTLET_VERIFY_REPLAY=1 additionally re-runs every campaign
   from its recorded trace and insists the re-run is bit-identical:
   same survival verdicts, same counters, same final-state digest. *)
let gauntlet_trace_dir = Sys.getenv_opt "BENCH_GAUNTLET_TRACE_DIR"

let gauntlet_verify_replay =
  match Sys.getenv_opt "BENCH_GAUNTLET_VERIFY_REPLAY" with
  | Some ("1" | "true" | "yes") -> true
  | Some _ | None -> false

let percentile sorted p =
  match Array.length sorted with
  | 0 -> nan
  | n -> sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))

(* Pick [k] distinct classes from [Plan.all] with the campaign rng. *)
let pick_classes rng k =
  let pool = ref Plan.all in
  let picked = ref [] in
  for _ = 1 to k do
    let n = List.length !pool in
    if n > 0 then begin
      let i = Rng.int rng n in
      let cls = List.nth !pool i in
      picked := cls :: !picked;
      pool := List.filter (fun c -> c <> cls) !pool
    end
  done;
  List.rev !picked

type campaign_result = {
  g_seed : int64;
  g_classes : Plan.fault_class list;
  g_lw_survived : bool;
  g_embedded_survived : bool;
  g_reconnects : int;
  g_restarted : bool;
  g_crashed : bool;
  g_wedge_breakins : int;
  g_probe_cycles : float list;  (** sim cycles per answered probe *)
}

(* [replay]: consume a recorded trace instead of the live chaos RNG;
   the divergence detector then cross-checks every other recorded
   nondeterministic event against the re-run. *)
let gauntlet_campaign ?replay ~seed () =
  let rng = Rng.create ~seed in
  let cyc s = Costs.cycles_of_seconds bench_costs s in
  (* -- lightweight VMM under fire -- *)
  let m = Machine.create ~mem_size:(16 * 1024 * 1024) ~costs:bench_costs () in
  let recorder = Machine.recorder m in
  (match replay with
   | None -> Recorder.start_record recorder
   | Some events -> Recorder.start_replay recorder events);
  let mon = Monitor.install m in
  let program = Kernel.build (Kernel.default_config ~rate_mbps:20.0) in
  Monitor.boot_guest mon program ~entry:Kernel.entry;
  Monitor.watchdog_start mon;
  Machine.run_seconds m 0.01;
  let plan = Plan.create ~seed ~engine:(Machine.engine m) in
  let chaos = Plan.chaos plan in
  Chaos.set_recorder chaos recorder;
  let session =
    Session.attach
      ~wrap_to_target:(Chaos.wrap ~source:"chaos.h2t" chaos)
      ~wrap_to_host:(Chaos.wrap ~source:"chaos.t2h" chaos) m
  in
  let classes = pick_classes rng (2 + Rng.int rng 3) in
  let now = Machine.now m in
  List.iter
    (fun cls ->
      let at = Int64.add now (cyc (0.002 +. Rng.float rng 0.02)) in
      let until = Int64.add at (cyc (0.02 +. Rng.float rng 0.04)) in
      Plan.arm plan ~monitor:mon cls ~at ~until)
    classes;
  let probe_cycles = ref [] in
  let reconnects = ref 0 in
  let probes_answered = ref 0 in
  let probes_sent = ref 0 in
  let probe ?(timeout_s = 1.0) () =
    incr probes_sent;
    match Session.read_registers ~timeout_s session with
    | Some _ ->
      incr probes_answered;
      probe_cycles :=
        (Session.last_latency_s session *. bench_costs.Costs.cpu_hz)
        :: !probe_cycles;
      true
    | None ->
      if not (Session.link_up session) then begin
        incr reconnects;
        ignore (Session.reconnect ~timeout_s:1.0 session)
      end;
      false
  in
  (* drive probes through the fault windows *)
  for _ = 1 to 16 do
    ignore (probe ~timeout_s:0.5 ());
    Machine.run_seconds m 0.005
  done;
  (* past the windows: recover the link deterministically *)
  let rec recover tries =
    probe () || (tries > 0 && (incr reconnects;
                               ignore (Session.reconnect ~timeout_s:1.0 session);
                               recover (tries - 1)))
  in
  let link_ok = recover 8 in
  (* a crashed guest refuses resume: warm-restart it; a wedged one was
     parked by the watchdog and restarts the same way *)
  let crashed = Monitor.crashed mon in
  let wedges = (Monitor.stats mon).Monitor.wedge_breakins in
  let restarted =
    if crashed || wedges > 0 then
      Session.restart ~timeout_s:2.0 session = Session.Restarted
    else false
  in
  (* the paper's claim, post-recovery: a full debug round-trip works *)
  let roundtrip =
    Session.insert_breakpoint session Kernel.entry
    && Session.read_memory session ~addr:Kernel.entry ~len:16 <> None
    && Session.remove_breakpoint session Kernel.entry
    && (Session.continue_ session;
        Session.is_running session <> None)
    && probe ()
  in
  let lw_survived =
    link_ok && roundtrip && ((not (crashed || wedges > 0)) || restarted)
  in
  (* seal the recording before the embedded baseline spins up its own
     machine: the trace covers exactly the lightweight-VMM campaign *)
  let final_digest = Snapshot.Full.digest (Monitor.checkpoint_now mon) in
  (* the post-mortem artifact, when the campaign crashed or wedged the
     guest; sticky across the warm restart above *)
  let bundle = Monitor.crash_bundle mon in
  let divergence =
    match replay with
    | Some _ -> Recorder.finish_replay recorder
    | None -> None
  in
  let events = Recorder.recorded recorder in
  Recorder.stop recorder;
  (* -- embedded baseline under the equivalent mix -- *)
  let embedded_survived =
    let m2 =
      Machine.create ~mem_size:(16 * 1024 * 1024) ~costs:bench_costs ()
    in
    let agent = Embedded.attach m2 ~region:0x80000 in
    let bug =
      (* the first guest class maps to the closest self-hosted bug; a
         campaign of pure link/device faults boots the healthy kernel *)
      List.find_map
        (fun cls ->
          match cls with
          | Plan.Guest_wild_jump -> Some (buggy_guest `Jump_void)
          | Plan.Guest_wild_store -> Some (buggy_guest `Wild_store)
          | Plan.Guest_iht_clobber | Plan.Guest_ptb_clobber ->
            Some (buggy_guest `Corrupt_iht)
          | Plan.Guest_irq_storm | Plan.Guest_wedge ->
            Some (buggy_guest `Mask_interrupts)
          | _ -> None)
        classes
    in
    (match bug with
     | Some program -> Machine.boot m2 program ~entry:0x1000
     | None ->
       Machine.boot m2 (Kernel.build (Kernel.default_config ~rate_mbps:20.0))
         ~entry:Kernel.entry);
    (try Machine.run_seconds m2 0.05
     with Cpu.Panic _ -> Embedded.mark_machine_dead agent);
    (* link classes damage the unprotected wire the same way *)
    let chaos2 =
      Chaos.create ~engine:(Machine.engine m2)
        ~rng:(Rng.create ~seed:(Int64.add seed 0x10000L))
        ()
    in
    let has_link =
      List.exists
        (fun c ->
          match c with
          | Plan.Link_drop | Plan.Link_corrupt | Plan.Link_dup
          | Plan.Link_delay ->
            true
          | _ -> false)
        classes
    in
    if has_link then begin
      Chaos.set_profile chaos2
        { Chaos.quiet with Chaos.drop_p = 0.04; Chaos.corrupt_p = 0.04 };
      Chaos.set_active chaos2 true
    end;
    let sink =
      Chaos.wrap chaos2 (fun b -> Uart.inject_rx (Machine.uart m2) b)
    in
    String.iter
      (fun c -> sink (Char.code c))
      (Packet.frame (Command.command_to_wire Command.Read_registers));
    (* flush chaos-delayed bytes; a panicked machine stays panicked *)
    (try Machine.run_seconds m2 0.01
     with Cpu.Panic _ -> Embedded.mark_machine_dead agent);
    Embedded.service agent > 0
  in
  ( {
      g_seed = seed;
      g_classes = classes;
      g_lw_survived = lw_survived;
      g_embedded_survived = embedded_survived;
      g_reconnects = !reconnects;
      g_restarted = restarted;
      g_crashed = crashed;
      g_wedge_breakins = wedges;
      g_probe_cycles = !probe_cycles;
    },
    events, final_digest, divergence, bundle )

let gauntlet () =
  section
    (Printf.sprintf
       "Gauntlet -- %d randomized multi-fault campaigns (base seed %Ld)"
       gauntlet_n gauntlet_base_seed);
  Printf.printf "%10s %-44s %6s %9s %8s\n" "seed" "classes" "lw" "embedded"
    "recovery";
  let save_trace ~seed ~digest r events =
    match gauntlet_trace_dir with
    | None -> ()
    | Some dir ->
      (try Unix.mkdir dir 0o755
       with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      let path =
        Filename.concat dir (Printf.sprintf "gauntlet-seed-%Ld.trace" seed)
      in
      Trace.save ~path
        (Trace.make_header
           ~label:
             (Printf.sprintf "bench-gauntlet;digest=%Lx;classes=%s" digest
                (String.concat "," (List.map Plan.name r.g_classes)))
           ~seed ())
        events;
      Printf.eprintf "gauntlet: wrote replay trace %s\n" path
  in
  (* every crashed/wedged campaign leaves a crash bundle (the same
     artifact qR serves over the debug link); drop them next to the
     replay traces so CI uploads both *)
  let save_bundle ~seed bundle =
    match (gauntlet_trace_dir, bundle) with
    | Some dir, Some text ->
      (try Unix.mkdir dir 0o755
       with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      let path =
        Filename.concat dir (Printf.sprintf "gauntlet-seed-%Ld.bundle" seed)
      in
      let oc = open_out path in
      output_string oc text;
      close_out oc;
      Printf.eprintf "gauntlet: wrote crash bundle %s\n" path
    | (None, _ | _, None) -> ()
  in
  let replay_failures = ref 0 in
  let detailed =
    List.init gauntlet_n (fun i ->
        let seed = Int64.add gauntlet_base_seed (Int64.of_int i) in
        let r, events, digest, _, bundle = gauntlet_campaign ~seed () in
        let recovery =
          (if r.g_restarted then "restart " else "")
          ^ if r.g_reconnects > 0 then Printf.sprintf "resync×%d" r.g_reconnects
            else ""
        in
        Printf.printf "%10Ld %-44s %6s %9s %8s\n" r.g_seed
          (String.concat "," (List.map Plan.name r.g_classes))
          (if r.g_lw_survived then "OK" else "DEAD")
          (if r.g_embedded_survived then "alive" else "dead")
          (if recovery = "" then "-" else recovery);
        if not r.g_lw_survived then save_trace ~seed ~digest r events;
        save_bundle ~seed bundle;
        if gauntlet_verify_replay then begin
          let r', _, digest', div, _ =
            gauntlet_campaign ~replay:events ~seed ()
          in
          if div <> None || digest' <> digest || r' <> r then begin
            incr replay_failures;
            Printf.eprintf
              "gauntlet: campaign seed %Ld did not replay bit-exact \
               (digest %Lx vs %Lx)\n"
              seed digest digest';
            match div with
            | Some d ->
              Format.eprintf "  %a@." Recorder.pp_divergence d
            | None -> ()
          end
        end;
        (r, digest))
  in
  let results = List.map fst detailed in
  let lw_ok = List.length (List.filter (fun r -> r.g_lw_survived) results) in
  let emb_ok =
    List.length (List.filter (fun r -> r.g_embedded_survived) results)
  in
  let latencies =
    List.concat_map (fun r -> r.g_probe_cycles) results |> Array.of_list
  in
  Array.sort compare latencies;
  let p50 = percentile latencies 0.50
  and p95 = percentile latencies 0.95
  and p99 = percentile latencies 0.99 in
  Printf.printf
    "\nlightweight VMM survived %d/%d campaigns; embedded baseline %d/%d\n"
    lw_ok gauntlet_n emb_ok gauntlet_n;
  Printf.printf
    "probe latency (sim cycles): p50 %.0f  p95 %.0f  p99 %.0f  (%d probes)\n"
    p50 p95 p99 (Array.length latencies);
  write_json "BENCH_gauntlet.json"
    (Json.Obj
       (run_header "gauntlet"
       @ [
           ("campaigns", Json.Int gauntlet_n);
           ("base_seed", Json.Int (Int64.to_int gauntlet_base_seed));
           ("lw_survivals", Json.Int lw_ok);
           ("embedded_survivals", Json.Int emb_ok);
           ("probe_count", Json.Int (Array.length latencies));
           ("probe_latency_p50_cycles", Json.Float p50);
           ("probe_latency_p95_cycles", Json.Float p95);
           ("probe_latency_p99_cycles", Json.Float p99);
           ("replay_verified", Json.Bool gauntlet_verify_replay);
           ("replay_failures", Json.Int !replay_failures);
           ( "results",
             Json.List
               (List.map
                  (fun (r, digest) ->
                    Json.Obj
                      [
                        ("seed", Json.Int (Int64.to_int r.g_seed));
                        ( "classes",
                          Json.List
                            (List.map
                               (fun c -> Json.String (Plan.name c))
                               r.g_classes) );
                        ("lw_survived", Json.Bool r.g_lw_survived);
                        ("embedded_survived", Json.Bool r.g_embedded_survived);
                        ("reconnects", Json.Int r.g_reconnects);
                        ("restarted", Json.Bool r.g_restarted);
                        ("crashed", Json.Bool r.g_crashed);
                        ("wedge_breakins", Json.Int r.g_wedge_breakins);
                        ("digest", Json.String (Printf.sprintf "%Lx" digest));
                      ])
                  detailed) );
         ]));
  if !replay_failures > 0 then begin
    Printf.eprintf "gauntlet: %d campaign(s) failed replay verification\n"
      !replay_failures;
    exit 1
  end;
  if lw_ok < gauntlet_n then begin
    List.iter
      (fun r ->
        if not r.g_lw_survived then
          Printf.eprintf
            "gauntlet: campaign seed %Ld (%s) did not survive -- replay with \
             BENCH_GAUNTLET_SEED=%Ld BENCH_GAUNTLET_N=1 (set \
             BENCH_GAUNTLET_TRACE_DIR to capture its trace artifact)\n"
            r.g_seed
            (String.concat "," (List.map Plan.name r.g_classes))
            r.g_seed)
      results;
    exit 1
  end

(* ---------------------------------------------------------------- *)
(* E4 — customizability: what each environment needs per device.    *)
(* ---------------------------------------------------------------- *)

let customize () =
  section "E4 -- debugging-environment comparison (paper Section 1)";
  let max_of sys =
    Workload.max_sustainable_rate ~duration_s:0.2 sys ~lo:5.0 ~hi:1000.0
      ~steps:8
  in
  let bare = max_of Workload.Bare_metal in
  let lw = max_of Workload.Lightweight_vmm in
  let full = max_of Workload.Hosted_full_vmm in
  let rows =
    Hw_simulator.comparison_rows ~lwvmm_io_efficiency:(lw /. bare)
      ~fullvmm_io_efficiency:(full /. bare)
    @ [ Hw_simulator.properties Hw_simulator.default ]
  in
  Printf.printf "%-32s %10s %22s %14s\n" "environment" "stable?"
    "new device needs" "I/O efficiency";
  List.iter
    (fun row ->
      Printf.printf "%-32s %10s %22s %13.1f%%\n" row.Hw_simulator.name
        (if row.Hw_simulator.stable_under_os_crash then "yes" else "no")
        (if row.Hw_simulator.needs_device_model_per_device then
           "device model in env"
         else "guest driver only")
        (100.0 *. row.Hw_simulator.io_efficiency))
    rows;
  Printf.printf
    "\nOnly the lightweight VMM is simultaneously stable, device-agnostic\n\
     and efficient -- the paper's three requirements.\n"

(* ---------------------------------------------------------------- *)
(* E5 — debugging while the guest streams (monitoring under load).  *)
(* ---------------------------------------------------------------- *)

let debugload () =
  section
    "E5 -- debug-command latency and overhead during streaming\n\
     (real 115200-baud debug link; one register poll every 5 ms)";
  Printf.printf "%10s %12s %14s %18s\n" "rate_mbps" "load" "load+polling"
    "cmd latency (ms)";
  List.iter
    (fun rate ->
      let base, _ =
        Workload.run Workload.Lightweight_vmm ~rate_mbps:rate ~duration_s:0.2
      in
      let config = Kernel.default_config ~rate_mbps:rate in
      let ctx, _program = Workload.prepare Workload.Lightweight_vmm ~config in
      let machine = Workload.machine_of ctx in
      let session = Session.attach machine in
      Machine.run_seconds machine 0.05;
      let t0 = Machine.now machine in
      let busy0 = Vmm_sim.Stats.busy_cycles (Machine.load machine) in
      let latencies = ref [] in
      while
        Costs.seconds_of_cycles Costs.default (Int64.sub (Machine.now machine) t0)
        < 0.2
      do
        (match Session.read_registers session with
         | Some _ -> latencies := Session.last_latency_s session :: !latencies
         | None -> ());
        Machine.run_seconds machine 0.005
      done;
      let elapsed = Int64.sub (Machine.now machine) t0 in
      let busy =
        Int64.sub (Vmm_sim.Stats.busy_cycles (Machine.load machine)) busy0
      in
      let load_polling = Int64.to_float busy /. Int64.to_float elapsed in
      let mean_latency =
        match !latencies with
        | [] -> nan
        | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
      in
      Printf.printf "%10.0f %11.1f%% %13.1f%% %18.3f\n" rate
        (100.0 *. base.Workload.cpu_load)
        (100.0 *. load_polling)
        (1000.0 *. mean_latency))
    [ 0.0; 50.0; 100.0; 150.0 ];
  Printf.printf
    "\nThe stub answers while the guest streams; polling costs a few\n\
     percent of CPU and latency stays in the millisecond range.\n"

(* ---------------------------------------------------------------- *)
(* E8 — virtual vs patch breakpoints: armed-site overhead + hit     *)
(* latency.  Writes BENCH_vbp.json; BENCH_VBP_MAX_HIT_CYCLES gates  *)
(* the hit-latency column in CI.                                    *)
(* ---------------------------------------------------------------- *)

module Breakpoints = Core.Breakpoints
module Stub = Core.Stub

(* A compute loop on page 0x1000 counting laps in r7, a never-executed
   [dead] site on the same (hot) page, and room from page 0x2000 up for
   bulk cold sites.  Virtual mode pays per-fetch on pages that carry an
   armed site; patch mode pays only at plant time — this guest makes
   both costs visible. *)
let vbp_guest () =
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a Isa.sp (Asm.imm 0x20000);
  Asm.movi a 1 (Asm.imm 0x1000);
  Asm.movi a 2 (Asm.imm 0x80);
  Asm.label a "loop";
  Asm.csum a 3 1 2;
  Asm.addi a 7 7 (Asm.imm 1);
  Asm.jmp a (Asm.lbl "loop");
  Asm.label a "dead";
  Asm.nop a;
  Asm.assemble a

(* Arm [n] sites directly in the stub's table before the shadow is
   warm: one on the hot page ([dead]), the rest spread over the cold
   pages from 0x2000.  Patch mode additionally plants the BRK bytes, as
   the stub would. *)
let vbp_arm_sites mon program n =
  let mem = Machine.mem (Monitor.machine mon) in
  let table = Stub.breakpoints (Monitor.stub mon) in
  let plant addr =
    let saved =
      if Breakpoints.mode table = Breakpoints.Patch then begin
        let orig = Bytes.create Isa.width in
        for i = 0 to Isa.width - 1 do
          Bytes.set orig i (Char.chr (Vmm_hw.Phys_mem.read_u8 mem (addr + i)))
        done;
        Isa.write mem addr Isa.Brk;
        Bytes.to_string orig
      end
      else ""
    in
    ignore (Breakpoints.add table ~addr ~saved)
  in
  plant (Asm.symbol program "dead");
  for i = 1 to n - 1 do
    plant (0x2000 + (i * Isa.width))
  done

let vbp_run mode ~sites =
  Unix.putenv "LWVMM_BP" mode;
  let m = Machine.create ~mem_size:(16 * 1024 * 1024) ~costs:bench_costs () in
  let mon = Monitor.install m in
  let p = vbp_guest () in
  Monitor.boot_guest mon p ~entry:0x1000;
  if sites > 0 then vbp_arm_sites mon p sites;
  Machine.run_for m ~cycles:400_000L;
  Cpu.read_reg (Machine.cpu m) 7

(* Hit latency: with [sites] cold sites armed, insert one breakpoint on
   the hot loop over the wire and measure cycles from the resume that
   follows the OK to the Break notification leaving the stub. *)
let vbp_hit_cycles mode ~sites =
  Unix.putenv "LWVMM_BP" mode;
  let m = Machine.create ~mem_size:(16 * 1024 * 1024) ~costs:bench_costs () in
  let mon = Monitor.install m in
  let p = vbp_guest () in
  Monitor.boot_guest mon p ~entry:0x1000;
  if sites > 0 then vbp_arm_sites mon p sites;
  let session = Session.attach m in
  Machine.run_seconds m 0.002;
  (* freeze the guest first so the measurement starts at the resume,
     not mid-flight during the insert's own round trip *)
  (match Session.halt session with
   | Some _ -> ()
   | None -> failwith "vbp bench: halt failed");
  let target = Asm.symbol p "loop" in
  if not (Session.insert_breakpoint session target) then
    failwith "vbp bench: insert failed";
  let t0 = Machine.now m in
  Session.continue_ session;
  match Session.wait_stop ~timeout_s:1.0 session with
  | Some (Command.Break _) -> Int64.to_int (Int64.sub (Machine.now m) t0)
  | _ -> failwith "vbp bench: no break"

let vbp () =
  section
    "E8 -- page-permission virtual breakpoints vs patch mode\n\
     (armed-site execution overhead and break-in latency)";
  let prev_mode = Sys.getenv_opt "LWVMM_BP" in
  Fun.protect ~finally:(fun () ->
      Unix.putenv "LWVMM_BP" (Option.value prev_mode ~default:""))
  @@ fun () ->
  let site_counts = [ 1; 100; 5000 ] in
  let rows = ref [] in
  Printf.printf "%-8s %7s %12s %10s %12s\n" "mode" "sites" "laps" "overhead"
    "hit cycles";
  List.iter
    (fun mode ->
      let baseline = vbp_run mode ~sites:0 in
      List.iter
        (fun sites ->
          let laps = vbp_run mode ~sites in
          let overhead =
            if laps = 0 then infinity
            else (float_of_int baseline /. float_of_int laps) -. 1.0
          in
          let hit = vbp_hit_cycles mode ~sites in
          Printf.printf "%-8s %7d %12d %9.1f%% %12d\n" mode sites laps
            (100.0 *. overhead) hit;
          rows :=
            Json.Obj
              [
                ("mode", Json.String mode);
                ("sites", Json.Int sites);
                ("laps_baseline", Json.Int baseline);
                ("laps", Json.Int laps);
                ("overhead", Json.Float overhead);
                ("hit_cycles", Json.Int hit);
              ]
            :: !rows)
        site_counts)
    [ "patch"; "virtual" ];
  let rows = List.rev !rows in
  write_json "BENCH_vbp.json"
    (Json.Obj (run_header "vbp" @ [ ("rows", Json.List rows) ]));
  Printf.printf
    "\nVirtual mode trades per-fetch faults on armed pages for untouched\n\
     guest text; cold armed sites are free until fetched in either mode.\n";
  match Sys.getenv_opt "BENCH_VBP_MAX_HIT_CYCLES" with
  | None -> ()
  | Some limit ->
    let limit = int_of_string limit in
    let worst =
      List.fold_left
        (fun acc row ->
          match row with
          | Json.Obj fields ->
            (match List.assoc_opt "hit_cycles" fields with
             | Some (Json.Int c) -> max acc c
             | _ -> acc)
          | _ -> acc)
        0 rows
    in
    if worst > limit then begin
      Printf.eprintf "vbp: worst hit latency %d cycles exceeds gate %d\n" worst
        limit;
      exit 1
    end
    else Printf.printf "[gate] worst hit latency %d <= %d cycles\n" worst limit

(* ---------------------------------------------------------------- *)
(* E6 — ablation: world-switch (trap) cost.                         *)
(* ---------------------------------------------------------------- *)

let ablation_trap () =
  section
    "E6 -- ablation: monitor world-switch cost vs maximum rate\n\
     (the knob that separates the lightweight VMM from real hardware)";
  Printf.printf "%22s %22s %12s\n" "world_switch (cycles)" "max rate (Mbps)"
    "vs default";
  let default_ws = Costs.default.Costs.world_switch in
  let rate_for ws =
    let costs = { Costs.default with Costs.world_switch = ws } in
    Workload.max_sustainable_rate ~costs ~duration_s:0.2
      Workload.Lightweight_vmm ~lo:5.0 ~hi:1000.0 ~steps:9
  in
  let default_rate = rate_for default_ws in
  List.iter
    (fun ws ->
      let rate = if ws = default_ws then default_rate else rate_for ws in
      Printf.printf "%22d %22.1f %11.2fx\n" ws rate (rate /. default_rate))
    [ 2000; 5000; 10000; default_ws; 40000; 80000 ]

(* ---------------------------------------------------------------- *)
(* E7 — ablation: pass-through vs trap-and-forward devices.         *)
(* ---------------------------------------------------------------- *)

let ablation_passthrough () =
  section
    "E7 -- ablation: direct device access vs monitor-mediated access\n\
     (isolates the design decision behind the 5.4x)";
  let measure ~passthrough label =
    let config = Kernel.default_config ~rate_mbps:100.0 in
    let machine = Machine.create ~mem_size:(16 * 1024 * 1024) () in
    let monitor = Monitor.install ~passthrough machine in
    Monitor.boot_guest monitor (Kernel.build config) ~entry:Kernel.entry;
    Machine.run_seconds machine 0.05;
    let t0 = Machine.now machine in
    let busy0 = Vmm_sim.Stats.busy_cycles (Machine.load machine) in
    let bytes0 = Vmm_hw.Nic.bytes_sent (Machine.nic machine) in
    Machine.run_seconds machine 0.2;
    let elapsed = Int64.sub (Machine.now machine) t0 in
    let busy =
      Int64.sub (Vmm_sim.Stats.busy_cycles (Machine.load machine)) busy0
    in
    let bytes =
      Int64.sub (Vmm_hw.Nic.bytes_sent (Machine.nic machine)) bytes0
    in
    let secs = Costs.seconds_of_cycles Costs.default elapsed in
    let stats = Monitor.stats monitor in
    Printf.printf "%-34s %9.1f %9.1f%% %14d\n" label
      (Int64.to_float bytes *. 8.0 /. secs /. 1e6)
      (100.0 *. Int64.to_float busy /. Int64.to_float elapsed)
      stats.Monitor.io_emulations
  in
  Printf.printf "%-34s %9s %10s %14s\n" "configuration (at 100 Mbps)"
    "achieved" "load" "trapped i/o";
  measure ~passthrough:Monitor.default_passthrough
    "SCSI+NIC direct (the paper)";
  measure
    ~passthrough:[ { Monitor.base = Machine.Ports.scsi; count = 7 } ]
    "SCSI direct, NIC trapped";
  measure ~passthrough:[] "everything trapped"

(* ---------------------------------------------------------------- *)
(* E8 — ablation: application in ring 3 (three-level protection).   *)
(* ---------------------------------------------------------------- *)

let ablation_usermode () =
  section
    "E8 -- ablation: streaming application at guest ring 3\n\
     (the paper's third protection level: app / OS / monitor)";
  Printf.printf "%-18s %12s %12s %12s %12s\n" "system" "kernel app"
    "ring-3 app" "overhead" "rate held?";
  List.iter
    (fun sys ->
      let run user =
        let config =
          { (Kernel.default_config ~rate_mbps:50.0) with Kernel.user_mode = user }
        in
        let ctx, program = Workload.prepare sys ~config in
        Workload.measure ctx program ~config ~warmup_s:0.05 ~duration_s:0.2
      in
      let kernel = run false and user = run true in
      Printf.printf "%-18s %11.1f%% %11.1f%% %11.1f%% %12s\n"
        (Workload.system_name sys)
        (100.0 *. kernel.Workload.cpu_load)
        (100.0 *. user.Workload.cpu_load)
        (100.0 *. (user.Workload.cpu_load -. kernel.Workload.cpu_load))
        (if user.Workload.achieved_mbps >= 0.95 *. 50.0 then "yes" else "no"))
    Workload.all_systems;
  Printf.printf
    "\nOn real hardware ring crossings are nearly free; under the\n\
     monitor each one is a world switch, so the third protection level\n\
     has a visible but affordable price at this rate.\n"

(* ---------------------------------------------------------------- *)
(* E9 — ablation: segment size (interrupt-rate sensitivity).        *)
(* ---------------------------------------------------------------- *)

let ablation_segment () =
  section
    "E9 -- ablation: disk segment size at 100 Mbps\n\
     (smaller segments = more pacing/disk interrupts per byte)";
  Printf.printf "%14s %14s %14s %14s\n" "segment (KiB)" "real_hw" "lw_vmm"
    "vmware_like";
  List.iter
    (fun kib ->
      let cells =
        List.map
          (fun sys ->
            let config =
              {
                (Kernel.default_config ~rate_mbps:100.0) with
                Kernel.segment_bytes = kib * 1024;
              }
            in
            let ctx, program = Workload.prepare sys ~config in
            let m =
              Workload.measure ctx program ~config ~warmup_s:0.05
                ~duration_s:0.2
            in
            Printf.sprintf "%5.1f%%%s"
              (100.0 *. m.Workload.cpu_load)
              (if m.Workload.achieved_mbps < 95.0 then "*" else " "))
          Workload.all_systems
      in
      match cells with
      | [ bare; lw; full ] ->
        Printf.printf "%14d %14s %14s %14s\n" kib bare lw full
      | _ -> assert false)
    [ 16; 32; 64; 128; 256 ]

(* ---------------------------------------------------------------- *)
(* sim-speed — host-side throughput of the simulator itself.        *)
(* ---------------------------------------------------------------- *)

(* Simulated-cycles-per-host-second on the Fig 3.1 workload.  Unlike the
   experiments above, which measure *simulated* quantities, this target
   times the simulator with the host clock so the block translator's
   effect (and any future regression) is visible in CI.  Each system is
   measured twice — threaded-code translator on and off — and the
   JIT-on/JIT-off throughput ratio is reported as [jit_speedup].  Knobs:
     BENCH_SIMSPEED_SIM_S    simulated seconds per arm (default 0.2)
     BENCH_SIMSPEED_MIN_CPS  fail (exit 1) if the lightweight-VMM
                             JIT-on arm falls below this many sim
                             cycles per host second *)
let sim_speed () =
  section
    "sim-speed -- simulated cycles per host second (Fig 3.1 workload, 100 Mbps)";
  let sim_s =
    match Sys.getenv_opt "BENCH_SIMSPEED_SIM_S" with
    | Some s -> (try float_of_string (String.trim s) with _ -> 0.2)
    | None -> 0.2
  in
  let measure ~jit sys =
    let config = Kernel.default_config ~rate_mbps:100.0 in
    let ctx, _program = Workload.prepare sys ~config in
    let machine = Workload.machine_of ctx in
    let cpu = Machine.cpu machine in
    Cpu.set_jit_enabled cpu jit;
    Machine.run_seconds machine 0.05 (* warmup *);
    let c0 = Machine.now machine in
    let i0 = Cpu.instructions_retired cpu in
    (* Host wall-clock measures simulator throughput (cycles/sec of
       real time); nothing feeds back into the sim. *)
    let h0 = Unix.gettimeofday () in (* determinism-ok: host-side timing *)
    Machine.run_seconds machine sim_s;
    let host_s = Unix.gettimeofday () -. h0 in (* determinism-ok: see above *)
    let cycles = Int64.sub (Machine.now machine) c0 in
    let instrs = Int64.sub (Cpu.instructions_retired cpu) i0 in
    let cps = Int64.to_float cycles /. host_s in
    let ips = Int64.to_float instrs /. host_s in
    Printf.printf
      "%-18s %-6s %9.3f host_s %10.1f Mcycles/host_s %8.2f host-MIPS\n"
      (Workload.system_name sys)
      (if jit then "jit" else "interp")
      host_s (cps /. 1e6) (ips /. 1e6);
    ( (Workload.system_name sys, jit),
      Json.Obj
        [
          ("system", Json.String (Workload.system_name sys));
          ("jit", Json.Bool jit);
          ("sim_seconds", Json.Float sim_s);
          ("host_seconds", Json.Float host_s);
          ("sim_cycles", Json.Int (Int64.to_int cycles));
          ("instructions", Json.Int (Int64.to_int instrs));
          ("sim_cycles_per_host_second", Json.Float cps);
          ("instructions_per_host_second", Json.Float ips);
          ("host_mips", Json.Float (ips /. 1e6));
          ( "icache",
            Json.Obj
              [
                ("hits", Json.Int (Cpu.icache_hits cpu));
                ("misses", Json.Int (Cpu.icache_misses cpu));
                ("invalidations", Json.Int (Cpu.icache_invalidations cpu));
              ] );
          ( "blocks",
            Json.Obj
              [
                ("compiled", Json.Int (Cpu.blocks_compiled cpu));
                ("hits", Json.Int (Cpu.block_hits cpu));
                ("invalidations", Json.Int (Cpu.block_invalidations cpu));
                ("chain_follows", Json.Int (Cpu.block_chain_follows cpu));
                ("interp_fallbacks", Json.Int (Cpu.block_fallbacks cpu));
              ] );
        ],
      (cps, ips) )
  in
  (* CPU-bound arm: a register/memory/stack compute loop that never
     idles, so host throughput measures the instruction path itself —
     the Fig 3.1 workload above is >99% idle and mostly times the event
     engine's idle skip.  This is the arm that demonstrates (and
     guards) the block translator's speedup. *)
  let cpu_bound_name = "cpu-bound loop" in
  let measure_cpu_bound ~jit =
    let m = Machine.create ~mem_size:(2 * 1024 * 1024) () in
    let cpu = Machine.cpu m in
    Cpu.set_jit_enabled cpu jit;
    let a = Asm.create ~origin:0x1000 () in
    Asm.movi a Isa.sp (Asm.imm 0x8000);
    Asm.movi a 1 (Asm.imm 0);
    Asm.movi a 4 (Asm.imm 0x4000);
    Asm.label a "loop";
    Asm.addi a 1 1 (Asm.imm 1);
    Asm.st a 4 0 1;
    Asm.ld a 5 4 0;
    Asm.add a 6 6 5;
    Asm.mul a 7 1 5;
    Asm.push a 6;
    Asm.pop a 8;
    Asm.cmpi a 1 (Asm.imm 0);
    Asm.jnz a (Asm.lbl "loop");
    Machine.boot m (Asm.assemble a) ~entry:0x1000;
    Machine.run_for m ~cycles:100_000L (* warmup *);
    let c0 = Machine.now m in
    let i0 = Cpu.instructions_retired cpu in
    let h0 = Unix.gettimeofday () in (* determinism-ok: host-side timing *)
    Machine.run_for m
      ~cycles:(Costs.cycles_of_seconds (Machine.costs m) sim_s);
    let host_s = Unix.gettimeofday () -. h0 in (* determinism-ok: see above *)
    let cycles = Int64.sub (Machine.now m) c0 in
    let instrs = Int64.sub (Cpu.instructions_retired cpu) i0 in
    let cps = Int64.to_float cycles /. host_s in
    let ips = Int64.to_float instrs /. host_s in
    Printf.printf
      "%-18s %-6s %9.3f host_s %10.1f Mcycles/host_s %8.2f host-MIPS\n"
      cpu_bound_name
      (if jit then "jit" else "interp")
      host_s (cps /. 1e6) (ips /. 1e6);
    ( (cpu_bound_name, jit),
      Json.Obj
        [
          ("system", Json.String cpu_bound_name);
          ("jit", Json.Bool jit);
          ("sim_seconds", Json.Float sim_s);
          ("host_seconds", Json.Float host_s);
          ("sim_cycles", Json.Int (Int64.to_int cycles));
          ("instructions", Json.Int (Int64.to_int instrs));
          ("sim_cycles_per_host_second", Json.Float cps);
          ("instructions_per_host_second", Json.Float ips);
          ("host_mips", Json.Float (ips /. 1e6));
          ( "blocks",
            Json.Obj
              [
                ("compiled", Json.Int (Cpu.blocks_compiled cpu));
                ("hits", Json.Int (Cpu.block_hits cpu));
                ("invalidations", Json.Int (Cpu.block_invalidations cpu));
                ("chain_follows", Json.Int (Cpu.block_chain_follows cpu));
                ("interp_fallbacks", Json.Int (Cpu.block_fallbacks cpu));
              ] );
        ],
      (cps, ips) )
  in
  let results =
    let fig_arms =
      List.concat_map
        (fun sys ->
          let off = measure ~jit:false sys in
          let on = measure ~jit:true sys in
          [ off; on ])
        [ Workload.Bare_metal; Workload.Lightweight_vmm ]
    in
    let cb_off = measure_cpu_bound ~jit:false in
    let cb_on = measure_cpu_bound ~jit:true in
    fig_arms @ [ cb_off; cb_on ]
  in
  let rate_of name jit =
    match
      List.find_opt (fun ((n, j), _, _) -> n = name && j = jit) results
    with
    | Some (_, _, r) -> Some r
    | None -> None
  in
  let speedup_of name =
    match (rate_of name true, rate_of name false) with
    | Some (_, ips_on), Some (_, ips_off) when ips_off > 0.0 ->
      ips_on /. ips_off
    | _ -> 0.0
  in
  let speedup = speedup_of cpu_bound_name in
  let speedup_fig31 = speedup_of (Workload.system_name Workload.Lightweight_vmm) in
  Printf.printf "jit speedup (cpu-bound, instructions/host_s): %.2fx\n" speedup;
  Printf.printf "jit speedup (lw_vmm fig3.1, instructions/host_s): %.2fx\n"
    speedup_fig31;
  write_json "BENCH_simspeed.json"
    (Json.Obj
       (run_header "sim-speed"
       @ [
           ("workloads", Json.List (List.map (fun (_, j, _) -> j) results));
           ("jit_speedup", Json.Float speedup);
           ("jit_speedup_fig31", Json.Float speedup_fig31);
         ]));
  (match Sys.getenv_opt "BENCH_SIMSPEED_MIN_SPEEDUP" with
   | None -> ()
   | Some floor_s ->
     let floor = try float_of_string (String.trim floor_s) with _ -> 0.0 in
     if speedup < floor then begin
       Printf.eprintf
         "sim-speed: jit speedup %.2fx is below the floor %.2fx\n" speedup
         floor;
       exit 1
     end);
  match Sys.getenv_opt "BENCH_SIMSPEED_MIN_CPS" with
  | None -> ()
  | Some floor_s ->
    let floor = try float_of_string (String.trim floor_s) with _ -> 0.0 in
    (match rate_of (Workload.system_name Workload.Lightweight_vmm) true with
     | Some (cps, _) when cps < floor ->
       Printf.eprintf
         "sim-speed: %s (jit) at %.0f cycles/host_s is below the floor %.0f\n"
         (Workload.system_name Workload.Lightweight_vmm)
         cps floor;
       exit 1
     | _ -> ())

(* ---------------------------------------------------------------- *)
(* profile — overhead of the continuous pc-sampling profiler.       *)
(* ---------------------------------------------------------------- *)

(* Runs the Fig 3.1 lightweight-VMM workload twice at the same seed and
   configuration -- profiler off, then armed at the default period --
   and compares host wall-clock.  The simulated side must not notice
   the profiler at all: elapsed cycles, instructions retired and busy
   cycles are asserted bit-identical between the two arms (sampling
   only reads pc/cpl), which is the same property that keeps record/
   replay traces convergent with profiling on.  Knobs:
     BENCH_PROFILE_SIM_S             simulated seconds per arm (default 0.5)
     BENCH_PROFILE_REPS              host-timing repetitions, averaged
                                     (default 3; damps scheduler noise)
     BENCH_PROFILE_MAX_OVERHEAD_PCT  fail (exit 1) when the armed run is
                                     more than this % slower *)
let profile_bench () =
  section
    "profile -- continuous-profiler overhead (Fig 3.1 workload, 100 Mbps)";
  let sim_s =
    match Sys.getenv_opt "BENCH_PROFILE_SIM_S" with
    | Some s -> (try float_of_string (String.trim s) with _ -> 0.5)
    | None -> 0.5
  in
  let reps =
    match Sys.getenv_opt "BENCH_PROFILE_REPS" with
    | Some s -> (try max 1 (int_of_string (String.trim s)) with _ -> 5)
    | None -> 5
  in
  let period =
    match Sys.getenv_opt "BENCH_PROFILE_PERIOD" with
    | Some s ->
      (try Int64.of_string (String.trim s)
       with _ -> Vmm_profile.Profiler.default_period)
    | None -> Vmm_profile.Profiler.default_period
  in
  let run_once ~profiled =
    let config = Kernel.default_config ~rate_mbps:100.0 in
    let ctx, _program = Workload.prepare Workload.Lightweight_vmm ~config in
    let machine = Workload.machine_of ctx in
    if profiled then Machine.set_profiling machine ~period;
    Machine.run_seconds machine 0.05 (* warmup *);
    let cpu = Machine.cpu machine in
    let c0 = Machine.now machine in
    let i0 = Cpu.instructions_retired cpu in
    let b0 = Vmm_sim.Stats.busy_cycles (Machine.load machine) in
    (* Host wall-clock measures the profiler's cost to the simulator;
       nothing feeds back into the sim. *)
    let h0 = Unix.gettimeofday () in (* determinism-ok: host-side timing *)
    Machine.run_seconds machine sim_s;
    let host_s = Unix.gettimeofday () -. h0 in (* determinism-ok: see above *)
    let observed =
      ( Int64.sub (Machine.now machine) c0,
        Int64.sub (Cpu.instructions_retired cpu) i0,
        Int64.sub (Vmm_sim.Stats.busy_cycles (Machine.load machine)) b0 )
    in
    ( host_s,
      observed,
      Vmm_profile.Profiler.total_samples (Machine.profiler machine) )
  in
  (* The two arms alternate within each repetition (off, on, off, on,
     ...) so slow host drift — a noisy neighbour, a frequency change —
     hits both arms equally instead of biasing whichever ran last.  The
     overhead is then the median of the per-repetition on/off ratios:
     pairing cancels drift inside each repetition and the median throws
     away the odd repetition a noisy neighbour stretched — on a shared
     box that jitter dwarfs the effect being measured. *)
  let off_s = ref 0.0 and on_s = ref 0.0 in
  let off_sim = ref None and on_sim = ref None in
  let samples = ref 0 in
  let ratios = Array.make reps 1.0 in
  let note sim total host observed =
    (match !sim with
     | None -> sim := Some observed
     | Some prior when prior <> observed ->
       Printf.eprintf
         "profile: repetitions disagree on simulated state -- the \
          workload is nondeterministic\n";
       exit 1
     | Some _ -> ());
    total := !total +. host
  in
  for rep = 0 to reps - 1 do
    let off_h, observed, _ = run_once ~profiled:false in
    note off_sim off_s off_h observed;
    let on_h, observed, n = run_once ~profiled:true in
    note on_sim on_s on_h observed;
    ratios.(rep) <- on_h /. off_h;
    samples := n
  done;
  let off_s = !off_s /. float_of_int reps
  and on_s = !on_s /. float_of_int reps in
  Array.sort compare ratios;
  let median_ratio = ratios.(reps / 2) in
  let off_sim = Option.get !off_sim and on_sim = Option.get !on_sim in
  let samples = !samples in
  let cycles, instrs, busy = off_sim in
  if off_sim <> on_sim then begin
    let c', i', b' = on_sim in
    Printf.eprintf
      "profile: arming the profiler perturbed the simulation\n\
      \  off: cycles=%Ld instrs=%Ld busy=%Ld\n\
      \  on : cycles=%Ld instrs=%Ld busy=%Ld\n"
      cycles instrs busy c' i' b';
    exit 1
  end;
  if samples <= 0 then begin
    Printf.eprintf "profile: armed run collected no samples\n";
    exit 1
  end;
  let overhead_pct = 100.0 *. (median_ratio -. 1.0) in
  Printf.printf "%-24s %10.3f host_s\n" "profiler off (mean)" off_s;
  Printf.printf "%-24s %10.3f host_s  (%d samples @ period %Ld)\n"
    "profiler on  (mean)" on_s samples period;
  Printf.printf "%-24s %+9.1f%%  (median of %d paired ratios)\n" "overhead"
    overhead_pct reps;
  Printf.printf
    "simulated side identical across arms: %Ld cycles, %Ld instrs, %Ld \
     busy\n"
    cycles instrs busy;
  write_json "BENCH_profile.json"
    (Json.Obj
       (run_header "profile"
       @ [
           ("sim_seconds", Json.Float sim_s);
           ("repetitions", Json.Int reps);
           ( "period_cycles",
             Json.Int (Int64.to_int period) );
           ("host_seconds_off", Json.Float off_s);
           ("host_seconds_on", Json.Float on_s);
           ("overhead_pct", Json.Float overhead_pct);
           ("samples", Json.Int samples);
           ("sim_cycles", Json.Int (Int64.to_int cycles));
           ("instructions", Json.Int (Int64.to_int instrs));
           ("busy_cycles", Json.Int (Int64.to_int busy));
           ("telemetry_identical", Json.Bool true);
         ]));
  match Sys.getenv_opt "BENCH_PROFILE_MAX_OVERHEAD_PCT" with
  | None -> ()
  | Some ceiling_s ->
    let ceiling =
      try float_of_string (String.trim ceiling_s) with _ -> infinity
    in
    if overhead_pct > ceiling then begin
      Printf.eprintf
        "profile: %.1f%% overhead is above the ceiling %.1f%%\n" overhead_pct
        ceiling;
      exit 1
    end

(* ---------------------------------------------------------------- *)
(* M3 — static-verifier throughput (host wall time).                *)
(* ---------------------------------------------------------------- *)

(* BENCH_ANALYSIS_ITERS=50 widens the sample for lower variance; the
   default keeps the no-argument bench run fast. *)
let analysis () =
  section "M3 -- static verifier throughput (CFG + abstract interpretation)";
  let iters =
    match Sys.getenv_opt "BENCH_ANALYSIS_ITERS" with
    | Some s -> (try max 1 (int_of_string (String.trim s)) with _ -> 10)
    | None -> 10
  in
  let layout = Core.Vm_layout.default ~mem_size:(16 * 1024 * 1024) in
  let cfg =
    {
      Vmm_analysis.Verifier.guest_owns = Core.Vm_layout.guest_owns layout;
      allowed_ports = Vmm_analysis.Verifier.default_ports;
      entry_ring = 0;
    }
  in
  let variants =
    [
      ("kernel", Kernel.default_config ~rate_mbps:50.0);
      ( "kernel-user-mode",
        { (Kernel.default_config ~rate_mbps:50.0) with Kernel.user_mode = true }
      );
    ]
  in
  let clock = Unix.gettimeofday in (* determinism-ok: host-side timing *)
  let results =
    List.map
      (fun (name, kcfg) ->
        let program = Kernel.build kcfg in
        let report =
          ref (Vmm_analysis.Verifier.verify ~clock cfg ~entry:Kernel.entry program)
        in
        (* Host wall-clock times the verifier itself (instructions/sec
           of real time); no simulation involved.  The verifier's own
           [clock] hook yields per-pass seconds, accumulated below. *)
        let passes = Hashtbl.create 4 in
        let note r =
          List.iter
            (fun (pass, s) ->
              Hashtbl.replace passes pass
                (s +. Option.value ~default:0.0 (Hashtbl.find_opt passes pass)))
            r.Vmm_analysis.Verifier.timings
        in
        let t0 = clock () in
        for _ = 1 to iters do
          report := Vmm_analysis.Verifier.verify ~clock cfg ~entry:Kernel.entry program;
          note !report
        done;
        let dt = (clock () -. t0) /. float_of_int iters in
        let r = !report in
        let per_pass =
          List.filter_map
            (fun pass ->
              Option.map
                (fun total -> (pass, total /. float_of_int iters))
                (Hashtbl.find_opt passes pass))
            [ "absint"; "check"; "summary"; "races" ]
        in
        let ips =
          if dt > 0.0 then float_of_int r.Vmm_analysis.Verifier.instructions /. dt
          else 0.0
        in
        Printf.printf "%-18s %4d instrs  %3d blocks  %.3f ms/verify  %.0f instrs/s  %s\n"
          name r.Vmm_analysis.Verifier.instructions
          r.Vmm_analysis.Verifier.blocks (dt *. 1000.0) ips
          (if r.Vmm_analysis.Verifier.clean then "clean" else "DIRTY");
        List.iter
          (fun (pass, s) -> Printf.printf "  %-16s %.3f ms\n" pass (s *. 1000.0))
          per_pass;
        (name, r, dt, ips, per_pass))
      variants
  in
  write_json "BENCH_analysis.json"
    (Json.Obj
       (run_header "analysis"
       @ [
           ("iterations", Json.Int iters);
           ( "programs",
             Json.List
               (List.map
                  (fun (name, r, dt, ips, per_pass) ->
                    Json.Obj
                      [
                        ("program", Json.String name);
                        ("clean", Json.Bool r.Vmm_analysis.Verifier.clean);
                        ( "diagnostics",
                          Json.Int
                            (List.length r.Vmm_analysis.Verifier.diagnostics) );
                        ( "instructions",
                          Json.Int r.Vmm_analysis.Verifier.instructions );
                        ("blocks", Json.Int r.Vmm_analysis.Verifier.blocks);
                        ("functions", Json.Int r.Vmm_analysis.Verifier.functions);
                        ("roots", Json.Int r.Vmm_analysis.Verifier.roots);
                        ( "summaries",
                          Json.Int r.Vmm_analysis.Verifier.summaries );
                        ( "summary_incomplete",
                          Json.Int r.Vmm_analysis.Verifier.summary_incomplete );
                        ( "race_sites",
                          Json.Int
                            (List.length r.Vmm_analysis.Verifier.race_sites) );
                        ("seconds_per_verify", Json.Float dt);
                        ("instructions_per_second", Json.Float ips);
                        ( "pass_seconds",
                          Json.Obj
                            (List.map
                               (fun (pass, s) -> (pass, Json.Float s))
                               per_pass) );
                      ])
                  results) );
         ]));
  List.iter
    (fun (name, r, _, _, _) ->
      if not r.Vmm_analysis.Verifier.clean then begin
        Printf.eprintf "analysis: shipped program '%s' has diagnostics:\n%s\n"
          name
          (Vmm_analysis.Verifier.render r);
        exit 1
      end)
    results;
  (* Throughput floor: the interprocedural pass must not silently
     regress verifier speed.  Opt-in via env so dev-machine noise never
     fails a local run. *)
  match Sys.getenv_opt "BENCH_ANALYSIS_MIN_IPS" with
  | None -> ()
  | Some floor_s -> (
    match float_of_string_opt (String.trim floor_s) with
    | None -> ()
    | Some floor ->
      List.iter
        (fun (name, _, _, ips, _) ->
          if ips < floor then begin
            Printf.eprintf
              "analysis: '%s' throughput %.0f instrs/s below the \
               BENCH_ANALYSIS_MIN_IPS floor %.0f\n"
              name ips floor;
            exit 1
          end)
        results)

(* ---------------------------------------------------------------- *)
(* M1 — bechamel microbenchmarks.                                   *)
(* ---------------------------------------------------------------- *)

let micro () =
  section "M1 -- microbenchmarks (host-side wall time per operation)";
  let open Bechamel in
  let step_machine =
    let machine = Machine.create ~mem_size:(2 * 1024 * 1024) () in
    let a = Asm.create ~origin:0x1000 () in
    Asm.label a "loop";
    Asm.addi a 1 1 (Asm.imm 1);
    Asm.jmp a (Asm.lbl "loop");
    Machine.boot machine (Asm.assemble a) ~entry:0x1000;
    Test.make ~name:"interpret 1000 instructions"
      (Staged.stage (fun () -> ignore (Machine.run_steps machine 1000)))
  in
  let world_switch =
    let machine = Machine.create ~mem_size:(16 * 1024 * 1024) () in
    let monitor = Monitor.install machine in
    let a = Asm.create ~origin:0x1000 () in
    Asm.label a "loop";
    Asm.sti a;
    Asm.jmp a (Asm.lbl "loop");
    Monitor.boot_guest monitor (Asm.assemble a) ~entry:0x1000;
    Test.make ~name:"100 emulated traps (STI)"
      (Staged.stage (fun () -> ignore (Machine.run_steps machine 100)))
  in
  let packet_roundtrip =
    let payload = String.make 64 'm' in
    Test.make ~name:"packet frame+decode (64B)"
      (Staged.stage (fun () ->
           let d = Packet.decoder () in
           ignore (Packet.feed_string d (Packet.frame payload))))
  in
  let event_queue =
    Test.make ~name:"event queue add+pop x100"
      (Staged.stage (fun () ->
           let q = Vmm_sim.Event_queue.create () in
           for i = 1 to 100 do
             ignore
               (Vmm_sim.Event_queue.add q
                  ~time:(Int64.of_int (i * 37 mod 100))
                  i)
           done;
           while Vmm_sim.Event_queue.pop q <> None do
             ()
           done))
  in
  let kernel_build =
    Test.make ~name:"assemble guest kernel"
      (Staged.stage (fun () ->
           ignore (Kernel.build (Kernel.default_config ~rate_mbps:100.0))))
  in
  let tests =
    [ step_machine; world_switch; packet_roundtrip; event_queue; kernel_build ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analysis = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ estimate ] ->
            Printf.printf "%-36s %12.1f ns/run\n" name estimate
          | Some _ | None -> Printf.printf "%-36s (no estimate)\n" name)
        analysis)
    tests

(* ---------------------------------------------------------------- *)

let targets =
  [
    ("fig3.1", fig3_1);
    ("headline", headline);
    ("stability", stability);
    ("gauntlet", gauntlet);
    ("customize", customize);
    ("debugload", debugload);
    ("vbp", vbp);
    ("ablation-trap", ablation_trap);
    ("ablation-passthrough", ablation_passthrough);
    ("ablation-usermode", ablation_usermode);
    ("ablation-segment", ablation_segment);
    ("sim-speed", sim_speed);
    ("profile", profile_bench);
    ("analysis", analysis);
    ("micro", micro);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ :: [] | [] -> List.map fst targets
  in
  List.iter
    (fun name ->
      match List.assoc_opt name targets with
      | Some f -> f ()
      | None ->
        Printf.eprintf "unknown bench target '%s'; known: %s\n" name
          (String.concat ", " (List.map fst targets));
        exit 1)
    requested
