(* lwvmm_dbg: the host-machine debugger front end.

   Boots the HiTactix-like guest under the lightweight monitor on a
   simulated target machine and gives you the remote-debugging command
   loop of the paper's Fig 2.1.  Reads commands from stdin (one per line);
   see `help`.  Extra commands beyond the debugger language:

     run <seconds>    -- advance the target by simulated wall time
     stats            -- full metrics registry (Prometheus text format)
     reconnect        -- revive a link declared dead (resync exchange)
     trace            -- recent monitor events
     trace on|off     -- start/stop cycle-attribution span recording
     trace dump FILE  -- write recorded spans as Chrome trace-event JSON
                         (open in Perfetto / about:tracing)
     quit

   Usage: dune exec bin/lwvmm_dbg.exe -- [--rate MBPS] [--fast-uart]
          [--lossy SEED] [--script 'cmd;cmd;...']

   Batch mode for CI:

     lwvmm_dbg lint [IMAGE] [--origin ADDR] [--entry ADDR]

   runs the static verifier (lib/analysis) over the shipped guest
   kernel — both kernel- and user-mode builds — or over a raw image
   file, under the monitor's default memory/port policy, and exits
   non-zero on any diagnostic. *)

module Machine = Vmm_hw.Machine
module Costs = Vmm_hw.Costs
module Monitor = Core.Monitor
module Kernel = Vmm_guest.Kernel
module Session = Vmm_debugger.Session
module Symbols = Vmm_debugger.Symbols
module Cli = Vmm_debugger.Cli
module Chaos = Vmm_fault.Chaos
module Verifier = Vmm_analysis.Verifier
module Vm_layout = Core.Vm_layout

(* LWVMM_PROFILE arms the continuous pc-sampling profiler: unset/empty/0
   leaves it off, a positive integer is the sampling period in guest
   cycles, anything else means the default period.  Sampling only reads
   pc/cpl, so arming it never perturbs guest-visible state — record and
   replay stay bit-exact with it on (the CI golden-trace job relies on
   this). *)
let profile_period ~default =
  match Sys.getenv_opt "LWVMM_PROFILE" with
  | None | Some "" -> default
  | Some "0" -> None
  | Some v ->
    (match Int64.of_string_opt v with
     | Some p when Int64.compare p 0L > 0 -> Some p
     | Some _ | None -> Some Vmm_profile.Profiler.default_period)

let arm_profiler machine ~default =
  match profile_period ~default with
  | Some period -> Machine.set_profiling machine ~period
  | None -> ()

let run rate fast_uart lossy script =
  let costs =
    if fast_uart then { Costs.default with Costs.uart_cycles_per_byte = 2000 }
    else Costs.default
  in
  let machine = Machine.create ~mem_size:(16 * 1024 * 1024) ~costs () in
  let monitor = Monitor.install machine in
  (* Interactive sessions profile by default (the `profile` command then
     has something to show); LWVMM_PROFILE=0 switches it off. *)
  arm_profiler machine ~default:(Some Vmm_profile.Profiler.default_period);
  let program = Kernel.build (Kernel.default_config ~rate_mbps:rate) in
  Monitor.boot_guest monitor program ~entry:Kernel.entry;
  (* periodic checkpoints back the rs/rc reverse-execution verbs *)
  Monitor.checkpoint_start monitor;
  Machine.run_seconds machine 0.02;
  let session =
    match lossy with
    | None -> Session.attach machine
    | Some seed ->
      (* A mildly hostile wire in both directions; the reliable link
         repairs it and `stats` shows the repair work. *)
      let chaos =
        Chaos.create ~engine:(Machine.engine machine)
          ~rng:(Vmm_sim.Rng.create ~seed:(Int64.of_int seed))
          ()
      in
      Chaos.set_profile chaos
        { Chaos.quiet with Chaos.drop_p = 0.005; Chaos.corrupt_p = 0.005 };
      Chaos.set_active chaos true;
      Printf.printf
        "lossy wire enabled (seed %d): 0.5%% drop, 0.5%% corrupt; \
         'reconnect' revives a dead link\n"
        seed;
      Session.attach ~wrap_to_target:(Chaos.wrap chaos)
        ~wrap_to_host:(Chaos.wrap chaos) machine
  in
  Session.register_metrics session (Machine.registry machine);
  let symbols = Symbols.of_program program in
  let cli = Cli.create ~session ~symbols in
  Printf.printf
    "lwvmm_dbg: guest streaming at %.0f Mbps under the lightweight monitor\n\
     type 'help' for commands, 'quit' to exit\n"
    rate;
  let execute line =
    match String.trim line with
    | "" -> true
    | "quit" | "exit" -> false
    | "trace" ->
      let records =
        Vmm_sim.Trace.find (Machine.trace machine) ~component:"monitor"
      in
      if records = [] then print_endline "(no monitor events recorded)"
      else
        List.iter
          (fun r -> Format.printf "%a@." Vmm_sim.Trace.pp_record r)
          records;
      true
    | "trace on" ->
      Vmm_obs.Tracer.set_enabled (Machine.tracer machine) true;
      print_endline "span recording on";
      true
    | "trace off" ->
      let tracer = Machine.tracer machine in
      Vmm_obs.Tracer.set_enabled tracer false;
      Printf.printf "span recording off (%d events held, %d dropped)\n"
        (Vmm_obs.Tracer.event_count tracer)
        (Vmm_obs.Tracer.dropped tracer);
      true
    | line
      when String.length line > 11 && String.sub line 0 11 = "trace dump " ->
      let path = String.trim (String.sub line 11 (String.length line - 11)) in
      if path = "" then print_endline "usage: trace dump FILE"
      else begin
        let json =
          Vmm_obs.Tracer.to_chrome_json (Machine.tracer machine)
        in
        let oc = open_out path in
        output_string oc (Vmm_obs.Json.to_string json);
        output_char oc '\n';
        close_out oc;
        Printf.printf "wrote %d events to %s\n"
          (Vmm_obs.Tracer.event_count (Machine.tracer machine))
          path
      end;
      true
    | "reconnect" ->
      if Session.reconnect session then print_endline "link re-established"
      else print_endline "reconnect failed (wire still hostile?)";
      true
    | "stats" ->
      (* Everything — device counters, monitor exit reasons, shadow
         state, both ends of the debug link — lives in one registry. *)
      print_string (Vmm_obs.Registry.dump (Machine.registry machine));
      true
    | line when String.length line > 4 && String.sub line 0 4 = "run " ->
      (match float_of_string_opt (String.sub line 4 (String.length line - 4)) with
       | Some s when s > 0.0 && s <= 60.0 ->
         Machine.run_seconds machine s;
         let c = Kernel.read_counters (Machine.mem machine) program in
         Printf.printf "advanced %.3f s: %d ticks, %d frames sent\n" s
           c.Kernel.ticks c.Kernel.frames_sent
       | Some _ | None -> print_endline "usage: run <seconds in (0, 60]>");
      true
    | line ->
      print_endline (Cli.execute cli line);
      true
  in
  match script with
  | Some script ->
    List.iter
      (fun line ->
        let line = String.trim line in
        if line <> "" then begin
          Printf.printf "(dbg) %s\n" line;
          ignore (execute line)
        end)
      (String.split_on_char ';' script)
  | None ->
    let rec repl () =
      (* stdout is block-buffered even on a tty: flush or the prompt
         (and the previous command's output) never appears *)
      print_string "(dbg) ";
      flush stdout;
      match In_channel.input_line stdin with
      | Some line -> if execute line then repl ()
      | None -> ()
    in
    repl ()

(* -- lint: batch verification with an exit code, for CI -- *)

(* The monitor's policy on the default 16 MiB machine: guest memory
   below monitor_base, emulated PIC/PIT/UART plus passed-through
   SCSI/NIC ports. *)
let lint_config () =
  let layout = Vm_layout.default ~mem_size:(16 * 1024 * 1024) in
  {
    Verifier.guest_owns = Vm_layout.guest_owns layout;
    allowed_ports = Verifier.default_ports;
    entry_ring = 0;
  }

(* Machine-readable lint report: one object per image, with the race
   pass and interprocedural-summary results alongside the classic
   counters. *)
let lint_json reports =
  let module J = Vmm_obs.Json in
  J.List
    (List.map
       (fun (name, _symbols, (r : Verifier.report)) ->
         J.Obj
           [
             ("program", J.String name);
             ("clean", J.Bool r.Verifier.clean);
             ( "diagnostics",
               J.List
                 (List.map
                    (fun (d : Verifier.diagnostic) ->
                      J.Obj
                        [
                          ("class", J.String (Verifier.class_name d.Verifier.cls));
                          ("addr", J.Int d.Verifier.addr);
                          ("detail", J.String d.Verifier.detail);
                        ])
                    r.Verifier.diagnostics) );
             ("instructions", J.Int r.Verifier.instructions);
             ("blocks", J.Int r.Verifier.blocks);
             ("functions", J.Int r.Verifier.functions);
             ("roots", J.Int r.Verifier.roots);
             ("summaries", J.Int r.Verifier.summaries);
             ("summary_incomplete", J.Int r.Verifier.summary_incomplete);
             ( "race_sites",
               J.List
                 (List.map
                    (fun (s : Vmm_analysis.Races.site) ->
                      J.Obj
                        [
                          ("load", J.Int s.Vmm_analysis.Races.load_pc);
                          ("store", J.Int s.Vmm_analysis.Races.store_pc);
                          ("lo", J.Int s.Vmm_analysis.Races.lo);
                          ("hi", J.Int s.Vmm_analysis.Races.hi);
                          ("vector", J.Int s.Vmm_analysis.Races.vector);
                          ("handler", J.Int s.Vmm_analysis.Races.handler);
                          ( "handler_writes",
                            J.Bool s.Vmm_analysis.Races.handler_writes );
                        ])
                    r.Verifier.race_sites) );
           ])
       reports)

(* Exit codes: 0 clean, 1 diagnostics found, 2 the image could not be
   loaded or decoded — so CI can tell a dirty guest from a broken
   artifact path. *)
let lint image_file origin entry json =
  let cfg = lint_config () in
  match
    match image_file with
    | Some path -> (
      match
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            Bytes.of_string (really_input_string ic (in_channel_length ic)))
      with
      | image ->
        let origin = Option.value origin ~default:0x1000 in
        Ok [ (path, None, Verifier.verify_image cfg ~origin ?entry image) ]
      | exception exn ->
        Error (Printf.sprintf "cannot load %s: %s" path (Printexc.to_string exn)))
    | None ->
      Ok
        (List.map
           (fun (name, kcfg) ->
             let p = Kernel.build kcfg in
             ( name,
               Some (Symbols.of_program p),
               Verifier.verify cfg ~entry:Kernel.entry p ))
           [
             ("guest kernel (kernel mode)", Kernel.default_config ~rate_mbps:50.0);
             ( "guest kernel (user mode)",
               { (Kernel.default_config ~rate_mbps:50.0) with Kernel.user_mode = true } );
           ])
  with
  | Error msg ->
    Printf.eprintf "lint: %s\n" msg;
    2
  | Ok reports ->
    if json then print_endline (Vmm_obs.Json.to_string (lint_json reports))
    else
      List.iter
        (fun (name, symbols, r) ->
          Printf.printf "%s: %s\n" name (Verifier.render ?symbols r))
        reports;
    if List.exists (fun (_, _, r) -> not r.Verifier.clean) reports then 1 else 0

(* -- record / replay: deterministic capture of a debug campaign --

   One shared driver boots the guest, arms periodic checkpoints, runs a
   seeded chaos window over the debug link and issues a fixed probe
   sequence.  `record` logs every nondeterministic event (timer fires,
   virtual-IRQ injections, UART/NIC ingress, DMA completions, chaos
   verdicts, checkpoints) to a versioned trace; `replay` re-runs the
   driver with the recorded events as the script — chaos verdicts come
   from the trace, every other event is checked for bit-exact
   convergence — and exits non-zero on the first divergence.  The final
   guest-state digest travels in the trace label, so replay also proves
   the end states match. *)

module Recorder = Vmm_replay.Recorder
module Trace = Vmm_replay.Trace
module Snapshot = Core.Snapshot

let drive ~mode ~seed ~seconds =
  let costs = { Costs.default with Costs.uart_cycles_per_byte = 2000 } in
  let machine = Machine.create ~mem_size:(16 * 1024 * 1024) ~costs () in
  let monitor = Monitor.install machine in
  (* Off unless LWVMM_PROFILE asks for it: record/replay converge either
     way, and CI replays the golden trace once with profiling on to prove
     the profiler never perturbs the deterministic path. *)
  arm_profiler machine ~default:None;
  let recorder = Machine.recorder machine in
  (match mode with
   | `Record -> Recorder.start_record recorder
   | `Replay events -> Recorder.start_replay recorder events);
  let program = Kernel.build (Kernel.default_config ~rate_mbps:50.0) in
  Monitor.boot_guest monitor program ~entry:Kernel.entry;
  Monitor.checkpoint_start monitor
    ~period_cycles:(Costs.cycles_of_seconds costs 0.005);
  let chaos =
    Chaos.create ~engine:(Machine.engine machine)
      ~rng:(Vmm_sim.Rng.create ~seed) ()
  in
  Chaos.set_recorder chaos recorder;
  Chaos.set_profile chaos
    { Chaos.quiet with
      Chaos.drop_p = 0.01;
      Chaos.corrupt_p = 0.01;
      Chaos.delay_p = 0.02;
      Chaos.max_delay_cycles = 5000;
    };
  let session =
    Session.attach
      ~wrap_to_target:(Chaos.wrap ~source:"chaos.h2t" chaos)
      ~wrap_to_host:(Chaos.wrap ~source:"chaos.t2h" chaos)
      machine
  in
  Machine.run_seconds machine 0.02;
  ignore (Session.read_registers session);
  Chaos.set_active chaos true;
  Machine.run_seconds machine (seconds /. 2.0);
  ignore (Session.read_registers session);
  Chaos.set_active chaos false;
  ignore (Session.query_watchdog session);
  Machine.run_seconds machine (seconds /. 2.0);
  let final = Monitor.checkpoint_now monitor in
  (machine, recorder, Snapshot.Full.digest final)

let label_field label key =
  List.find_map
    (fun tok ->
      let prefix = key ^ "=" in
      let plen = String.length prefix in
      if String.length tok > plen && String.sub tok 0 plen = prefix then
        Some (String.sub tok plen (String.length tok - plen))
      else None)
    (String.split_on_char ';' label)

let record path seed seconds =
  let seed = Int64.of_int seed in
  let machine, recorder, digest = drive ~mode:`Record ~seed ~seconds in
  Recorder.stop recorder;
  let events = Recorder.recorded recorder in
  let header =
    Trace.make_header
      ~label:(Printf.sprintf "lwvmm_dbg;digest=%Lx;seconds=%g" digest seconds)
      ~seed ()
  in
  Trace.save ~path header events;
  Printf.printf "recorded %d events over %g s to %s\nfinal digest %Lx at cycle %Ld\n"
    (List.length events) seconds path digest (Machine.now machine);
  0

let replay path =
  match Trace.load ~path with
  | Error msg ->
    Printf.eprintf "replay: %s\n" msg;
    2
  | Ok (header, events) ->
    let seconds =
      match label_field header.Trace.label "seconds" with
      | Some s -> (try float_of_string s with _ -> 0.1)
      | None -> 0.1
    in
    let _machine, recorder, digest =
      drive ~mode:(`Replay events) ~seed:header.Trace.seed ~seconds
    in
    (match Recorder.finish_replay recorder with
     | Some d ->
       Format.printf "replay DIVERGED:@.%a@." Recorder.pp_divergence d;
       1
     | None ->
       (match label_field header.Trace.label "digest" with
        | Some want when want <> Printf.sprintf "%Lx" digest ->
          Printf.printf
            "replay DIVERGED: final digest %Lx, recorded run had %s\n" digest
            want;
          1
        | _ ->
          Printf.printf
            "replay converged: %d events bit-exact, final digest %Lx\n"
            (List.length events) digest;
          0))

open Cmdliner

let rate =
  let doc = "Guest streaming rate in Mbps." in
  Arg.(value & opt float 50.0 & info [ "rate" ] ~docv:"MBPS" ~doc)

let fast_uart =
  let doc =
    "Model a fast debug link instead of real 115200 baud (snappier \
     interactive use)."
  in
  Arg.(value & flag & info [ "fast-uart" ] ~doc)

let lossy =
  let doc =
    "Interpose a seeded lossy wire on the debug link (1% drop, 1% corrupt \
     per byte); the reliable link repairs it."
  in
  Arg.(value & opt (some int) None & info [ "lossy" ] ~docv:"SEED" ~doc)

let script =
  let doc = "Run a semicolon-separated command list instead of a REPL." in
  Arg.(value & opt (some string) None & info [ "script" ] ~docv:"CMDS" ~doc)

let image_file =
  let doc =
    "Raw LWM-32 image file to lint instead of the shipped guest kernel."
  in
  (* [string], not [file]: a missing path must exit 2 ("failed to
     load"), not die in option parsing. *)
  Arg.(value & pos 0 (some string) None & info [] ~docv:"IMAGE" ~doc)

let origin_arg =
  let doc = "Load address of the raw image (default 0x1000)." in
  Arg.(value & opt (some int) None & info [ "origin" ] ~docv:"ADDR" ~doc)

let entry_arg =
  let doc = "Entry point of the raw image (default: its origin)." in
  Arg.(value & opt (some int) None & info [ "entry" ] ~docv:"ADDR" ~doc)

let run' rate fast_uart lossy script =
  run rate fast_uart lossy script;
  0

let run_term = Term.(const run' $ rate $ fast_uart $ lossy $ script)

let json_flag =
  let doc = "Emit the report as JSON (one object per image) instead of text." in
  Arg.(value & flag & info [ "json" ] ~doc)

let lint_cmd =
  let doc =
    "statically verify a guest image (CFG + abstract interpretation + \
     interprocedural race pass); exit 1 on diagnostics, 2 when the image \
     fails to load"
  in
  Cmd.v (Cmd.info "lint" ~doc)
    Term.(const lint $ image_file $ origin_arg $ entry_arg $ json_flag)

let run_cmd =
  let doc = "boot the guest under the monitor and open the debug REPL" in
  Cmd.v (Cmd.info "run" ~doc) run_term

let trace_path_new =
  let doc = "Trace file to write." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE" ~doc)

let trace_path_existing =
  let doc = "Trace file to replay." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc)

let seed_arg =
  let doc = "Seed for the chaos-wire RNG (stored in the trace header)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc)

let seconds_arg =
  let doc = "Simulated seconds of chaos campaign to record." in
  Arg.(value & opt float 0.1 & info [ "seconds" ] ~docv:"S" ~doc)

let record_cmd =
  let doc =
    "run a seeded chaos campaign and record every nondeterministic event \
     to a replayable trace"
  in
  Cmd.v (Cmd.info "record" ~doc)
    Term.(const record $ trace_path_new $ seed_arg $ seconds_arg)

let replay_cmd =
  let doc =
    "re-run a recorded campaign from its trace, asserting bit-exact \
     convergence; exits non-zero on the first divergence"
  in
  Cmd.v (Cmd.info "replay" ~doc) Term.(const replay $ trace_path_existing)

let cmd =
  let doc = "remote debugger for guests under the lightweight VMM" in
  let info = Cmd.info "lwvmm_dbg" ~doc in
  Cmd.group ~default:run_term info [ run_cmd; lint_cmd; record_cmd; replay_cmd ]

let () = exit (Cmd.eval' cmd)
