(* Fault storm: every fault class in `Vmm_fault.Plan`, one after another,
   against a single debug session — the stability suite's scenario as a
   watchable demo.  The wire degrades, the guest crashes six different
   ways, the disks fail and the NIC stalls; after each storm the host
   sets a breakpoint, reads memory and resumes, and the run summarizes
   the repair work the reliable link did.

   Everything is deterministic in the seed (default 2026; pass another as
   argv 1).

   Run with: dune exec examples/fault_storm.exe [-- seed] *)

module Machine = Vmm_hw.Machine
module Costs = Vmm_hw.Costs
module Reliable = Vmm_proto.Reliable
module Monitor = Core.Monitor
module Kernel = Vmm_guest.Kernel
module Session = Vmm_debugger.Session
module Chaos = Vmm_fault.Chaos
module Plan = Vmm_fault.Plan

let costs = { Costs.default with Costs.uart_cycles_per_byte = 2000 }

let cyc s = Costs.cycles_of_seconds costs s

let () =
  let seed =
    if Array.length Sys.argv > 1 then Int64.of_string Sys.argv.(1) else 2026L
  in
  Printf.printf "== fault storm (seed %Ld) ==\n%!" seed;
  let m = Machine.create ~mem_size:(16 * 1024 * 1024) ~costs () in
  let mon = Monitor.install m in
  let program = Kernel.build (Kernel.default_config ~rate_mbps:20.0) in
  Monitor.boot_guest mon program ~entry:Kernel.entry;
  Machine.run_seconds m 0.01;
  let plan = Plan.create ~seed ~engine:(Machine.engine m) in
  let chaos = Plan.chaos plan in
  let session =
    Session.attach ~wrap_to_target:(Chaos.wrap chaos)
      ~wrap_to_host:(Chaos.wrap chaos) m
  in
  let survived = ref 0 in
  List.iter
    (fun cls ->
      Printf.printf "-- %-18s " (Plan.name cls);
      let now = Machine.now m in
      Plan.arm plan ~monitor:mon cls ~at:(Int64.add now (cyc 0.002))
        ~until:(Int64.add now (cyc 0.06));
      (* live traffic through the fault window *)
      for _ = 1 to 8 do
        ignore
          (Session.read_memory ~timeout_s:0.5 session ~addr:Kernel.entry
             ~len:32);
        if not (Session.link_up session) then
          ignore (Session.reconnect ~timeout_s:0.5 session)
      done;
      Machine.run_seconds m 0.05;
      (* recovery: a few resync attempts on the now-quiet wire *)
      let rec recover tries =
        Session.read_registers ~timeout_s:1.0 session <> None
        || tries > 0
           && (ignore (Session.reconnect ~timeout_s:1.0 session);
               recover (tries - 1))
      in
      let alive =
        recover 5
        && Session.insert_breakpoint session Kernel.entry
        && Session.read_memory session ~addr:Kernel.entry ~len:16 <> None
        && Session.remove_breakpoint session Kernel.entry
      in
      Session.continue_ session;
      let answers = Session.is_running session <> None in
      if alive && answers then begin
        incr survived;
        Printf.printf "debugger survived\n%!"
      end
      else Printf.printf "DEBUGGER LOST\n%!")
    Plan.all;
  let s = Monitor.stats mon in
  let h = Session.link_stats session in
  let c = Chaos.stats chaos in
  Printf.printf "== %d/%d fault classes survived ==\n" !survived
    (List.length Plan.all);
  Printf.printf
    "chaos: %d bytes passed, %d dropped, %d corrupted, %d duplicated, %d \
     delayed\n"
    c.Chaos.passed c.Chaos.dropped c.Chaos.corrupted c.Chaos.duplicated
    c.Chaos.delayed;
  Printf.printf
    "host link: %d retransmits, %d bad checksums, %d dups dropped, %d downs\n"
    h.Reliable.retransmits h.Reliable.bad_checksums
    h.Reliable.duplicates_dropped (Session.link_downs session);
  Printf.printf
    "target link: %d retransmits, %d bad checksums, %d resets, %d downs\n"
    s.Monitor.link_retransmits s.Monitor.link_bad_checksums
    s.Monitor.link_resets s.Monitor.link_downs;
  Printf.printf "monitor: %d injected faults, %d escalations — still standing\n"
    s.Monitor.injected_faults s.Monitor.escalations;
  if !survived <> List.length Plan.all then exit 1
