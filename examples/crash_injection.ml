(* Stability demonstration (the paper's first claim): inject OS bugs into
   the guest and show that the monitor's remote-debugging function keeps
   working, while a conventional debugger embedded in the OS dies with it.

   Three injected bugs:
     1. a wild store sweeping over kernel memory (hits the embedded
        debugger's image),
     2. corrupting the interrupt-handling table, then faulting,
     3. jumping into unmapped address space.

   Run with: dune exec examples/crash_injection.exe *)

module Machine = Vmm_hw.Machine
module Cpu = Vmm_hw.Cpu
module Asm = Vmm_hw.Asm
module Isa = Vmm_hw.Isa
module Costs = Vmm_hw.Costs
module Uart = Vmm_hw.Uart
module Packet = Vmm_proto.Packet
module Command = Vmm_proto.Command
module Monitor = Core.Monitor
module Session = Vmm_debugger.Session
module Embedded = Vmm_baseline.Embedded_debugger

let costs = { Costs.default with Costs.uart_cycles_per_byte = 2000 }

(* A guest that runs briefly, then executes the injected bug. *)
let buggy_guest bug =
  let a = Asm.create ~origin:0x1000 () in
  Asm.movi a Isa.sp (Asm.imm 0x20000);
  Asm.movi a 1 (Asm.imm 0);
  Asm.label a "warmup";
  Asm.addi a 1 1 (Asm.imm 1);
  Asm.cmpi a 1 (Asm.imm 1000);
  Asm.jnz a (Asm.lbl "warmup");
  (match bug with
   | `Wild_store_sweep ->
     (* sweep 64 KiB of stores across kernel memory at 0x80000 *)
     Asm.movi a 2 (Asm.imm 0x80000);
     Asm.movi a 3 (Asm.imm 0xDEAD);
     Asm.label a "sweep";
     Asm.st a 2 0 3;
     Asm.addi a 2 2 (Asm.imm 4);
     Asm.cmpi a 2 (Asm.imm 0x90000);
     Asm.jnz a (Asm.lbl "sweep")
   | `Corrupt_iht ->
     Asm.movi a 2 (Asm.imm 0x3000);
     Asm.liht a 2 (* point the interrupt table into zeroed memory *);
     Asm.int_ a 40 (* ...and immediately need it *)
   | `Jump_to_void ->
     Asm.movi a 2 (Asm.imm 0xFF000000);
     Asm.jr a 2);
  Asm.label a "after";
  Asm.jmp a (Asm.lbl "after");
  Asm.assemble a

let bug_name = function
  | `Wild_store_sweep -> "wild store sweep over kernel memory"
  | `Corrupt_iht -> "interrupt table corrupted, then used"
  | `Jump_to_void -> "jump into unmapped address space"

let try_lwvmm bug =
  let machine = Machine.create ~mem_size:(16 * 1024 * 1024) ~costs () in
  let monitor = Monitor.install machine in
  Monitor.boot_guest monitor (buggy_guest bug) ~entry:0x1000;
  let session = Session.attach machine in
  Machine.run_seconds machine 0.05 (* let the bug fire *);
  let crashed = Session.pending_stop session in
  let regs = Session.read_registers session in
  let memory = Session.read_memory session ~addr:0x1000 ~len:16 in
  Printf.printf "  lightweight VMM : ";
  (match crashed with
   | Some (Command.Faulted { vector; pc }) ->
     Printf.printf "guest stopped (vector %d at 0x%x); " vector pc
   | Some _ -> Printf.printf "guest stopped; "
   | None -> Printf.printf "guest still running; ");
  (match (regs, memory) with
   | Some _, Some _ ->
     Printf.printf "debugger ALIVE: registers and memory still readable\n"
   | _ -> Printf.printf "debugger DEAD\n")

let try_embedded bug =
  let machine = Machine.create ~mem_size:(16 * 1024 * 1024) ~costs () in
  (* The agent lives where an embedded debugger would: inside the kernel
     image region the wild store sweeps over. *)
  let agent = Embedded.attach machine ~region:0x80000 in
  Machine.boot machine (buggy_guest bug) ~entry:0x1000;
  let replies = Buffer.create 64 in
  Uart.set_on_tx (Machine.uart machine) (fun b ->
      Buffer.add_char replies (Char.chr b));
  (try Machine.run_seconds machine 0.05 with
  | Cpu.Panic _ -> Embedded.mark_machine_dead agent);
  String.iter
    (fun c -> Uart.inject_rx (Machine.uart machine) (Char.code c))
    (Packet.frame (Command.command_to_wire Command.Read_registers));
  let answered = Embedded.service agent in
  ignore (Vmm_sim.Engine.run_until_idle (Machine.engine machine));
  Printf.printf "  embedded in OS  : %s\n"
    (if answered > 0 && Buffer.length replies > 0 then
       "debugger ALIVE: answered the host"
     else "debugger DEAD: no response to the host")

let () =
  Printf.printf
    "Stability under guest failure (paper claim 1).\n\
     Each injected OS bug is run under (a) the lightweight VMM's stub and\n\
     (b) a debugger embedded in the OS under development.\n";
  List.iter
    (fun bug ->
      Printf.printf "\nbug: %s\n" (bug_name bug);
      try_lwvmm bug;
      try_embedded bug)
    [ `Wild_store_sweep; `Corrupt_iht; `Jump_to_void ];
  Printf.printf
    "\nThe monitor's stub answers in every case because the hardware\n\
     resources it depends on are reachable only through the monitor;\n\
     the embedded debugger shares the OS's fate.\n"
