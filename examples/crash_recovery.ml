(* Crash recovery: the guest-lifecycle tour as a watchable demo.

   Act 1 — the guest wedges (interrupts off + halt) and goes silent; the
   monitor's watchdog notices the missing progress and forces a break-in
   (T07), so the debugger gets a stopped target at the wedge pc instead
   of a dead wire.

   Act 2 — the guest destroys its own interrupt-handler table and
   crashes unrecoverably; the monitor quarantines it.  The stub stays
   fully responsive (memory, registers, qW all answer) but refuses to
   resume the corpse (E03).

   Act 3 — a warm restart (R) reboots the guest from its boot snapshot
   without dropping the session, and the streaming workload runs to a
   healthy cadence again.

   Run with: dune exec examples/crash_recovery.exe *)

module Machine = Vmm_hw.Machine
module Costs = Vmm_hw.Costs
module Command = Vmm_proto.Command
module Monitor = Core.Monitor
module Kernel = Vmm_guest.Kernel
module Session = Vmm_debugger.Session

let costs = { Costs.default with Costs.uart_cycles_per_byte = 2000 }

let show_qw session =
  match Session.query_watchdog session with
  | Some (text, _) -> Printf.printf "   qW: %s\n%!" text
  | None -> Printf.printf "   qW: (no answer)\n%!"

let () =
  let m = Machine.create ~mem_size:(16 * 1024 * 1024) ~costs () in
  let mon = Monitor.install m in
  let program = Kernel.build (Kernel.default_config ~rate_mbps:20.0) in
  Monitor.boot_guest mon program ~entry:Kernel.entry;
  Monitor.watchdog_start mon;
  let session = Session.attach m in
  Machine.run_seconds m 0.01;

  Printf.printf "== act 1: silent wedge, watchdog break-in ==\n%!";
  Monitor.inject mon Monitor.Guest_wedge;
  (match Session.wait_stop ~timeout_s:0.1 session with
   | Some (Command.Wedged pc) ->
     Printf.printf "   watchdog broke in at pc=0x%x\n%!" pc
   | Some _ | None -> Printf.printf "   (no break-in?)\n%!");
  show_qw session;
  (* A wedge leaves the guest with interrupts off; resuming it would
     only wedge again.  The cure is a warm restart. *)
  (match Session.restart session with
   | Session.Restarted -> Printf.printf "   un-wedged by warm restart\n%!"
   | Session.Refused | Session.No_answer ->
     Printf.printf "   restart failed\n%!");
  Machine.run_seconds m 0.02;

  Printf.printf "== act 2: unrecoverable crash, quarantine ==\n%!";
  Monitor.inject mon Monitor.Iht_clobber;
  Machine.run_seconds m 0.02;
  Printf.printf "   crashed=%b; memory still readable=%b\n%!"
    (Monitor.crashed mon)
    (Session.read_memory session ~addr:Kernel.entry ~len:32 <> None);
  show_qw session;
  Session.continue_ session;
  Printf.printf "   resume refused=%b (E03)\n%!"
    (Session.is_running session = Some false);

  Printf.printf "== act 3: warm restart, back to streaming ==\n%!";
  (match Session.restart session with
   | Session.Restarted -> Printf.printf "   restarted from boot snapshot\n%!"
   | Session.Refused | Session.No_answer ->
     Printf.printf "   restart failed\n%!");
  Machine.run_seconds m 0.25;
  let c = Kernel.read_counters (Machine.mem m) program in
  let s = Monitor.stats mon in
  Printf.printf
    "   after reboot: %d ticks, %d segments done, %d frames sent\n"
    c.Kernel.ticks c.Kernel.segments_done c.Kernel.frames_sent;
  Printf.printf
    "== lifecycle: %d break-ins, %d crashes, %d restarts; crashed=%b ==\n"
    s.Monitor.wedge_breakins s.Monitor.crashes s.Monitor.restarts
    (Monitor.crashed mon);
  if s.Monitor.restarts <> 2 || s.Monitor.crashes <> 1 || Monitor.crashed mon
  then exit 1
