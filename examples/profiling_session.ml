(* Interrupt-driven profiling of a live appliance.

   The monitor samples the interrupted guest pc at every reflected timer
   tick, so the host debugger can ask "where does the CPU go?" without
   stopping the target — the kind of question the paper's environment is
   built to answer while the OS runs high-throughput I/O.

   This session profiles the streaming guest at a low and a high rate and
   shows the shift from idle time to the packetization path.  The
   high-rate run also records cycle-attribution spans and writes them as
   Chrome trace-event JSON (profiling_session_trace.json — open it in
   Perfetto or about:tracing for the timeline view of the same story).

   Run with: dune exec examples/profiling_session.exe *)

module Machine = Vmm_hw.Machine
module Costs = Vmm_hw.Costs
module Monitor = Core.Monitor
module Kernel = Vmm_guest.Kernel
module Session = Vmm_debugger.Session
module Symbols = Vmm_debugger.Symbols
module Cli = Vmm_debugger.Cli

module Tracer = Vmm_obs.Tracer
module Json = Vmm_obs.Json

let trace_file = "profiling_session_trace.json"

let profile_at ?(record_spans = false) rate =
  let costs = { Costs.default with Costs.uart_cycles_per_byte = 2000 } in
  let machine = Machine.create ~mem_size:(16 * 1024 * 1024) ~costs () in
  let monitor = Monitor.install machine in
  (* user-mode guest: the application packetizes with interrupts enabled,
     so timer samples can land in it.  (The kernel-mode guest does all its
     work inside interrupt handlers with IF clear — invisible to timer
     sampling, exactly as on real hardware.) *)
  let program =
    Kernel.build
      { (Kernel.default_config ~rate_mbps:rate) with Kernel.user_mode = true }
  in
  Monitor.boot_guest monitor program ~entry:Kernel.entry;
  let tracer = Machine.tracer machine in
  if record_spans then Tracer.set_enabled tracer true;
  Machine.run_seconds machine 0.5 (* sampling window *);
  if record_spans then begin
    Tracer.set_enabled tracer false;
    let oc = open_out trace_file in
    output_string oc (Json.to_string (Tracer.to_chrome_json tracer));
    output_char oc '\n';
    close_out oc;
    (* Round-trip the file through the parser: a malformed export should
       fail here, not in the browser. *)
    let ic = open_in trace_file in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    (match Json.of_string text with
     | Ok doc ->
       let events =
         match Option.bind (Json.member "traceEvents" doc) Json.to_list_opt with
         | Some l -> List.length l
         | None -> failwith "traceEvents missing from exported trace"
       in
       Printf.printf "wrote %s: %d events (Perfetto-loadable)\n" trace_file
         events
     | Error msg -> failwith ("exported trace does not parse: " ^ msg));
    Printf.printf "cycle breakdown over the window:\n";
    List.iter
      (fun (cat, cycles) ->
        Printf.printf "  %-12s %12Ld cycles\n" cat cycles)
      (Vmm_sim.Stats.busy_by_category (Machine.load machine))
  end;
  let session = Session.attach machine in
  let symbols = Symbols.of_program program in
  let cli = Cli.create ~session ~symbols in
  Printf.printf "\n--- profile at %.0f Mbps ---\n%s\n" rate
    (Cli.execute cli "profile 6")

let () =
  Printf.printf
    "Timer-interrupt pc sampling of the streaming appliance under the\n\
     lightweight monitor (the guest keeps running throughout).\n";
  profile_at 20.0;
  profile_at ~record_spans:true 150.0;
  Printf.printf
    "\nAt 20 Mbps every sample lands in the kernel's wait-segment block\n\
     point (the appliance is idle); at 150 Mbps the samples migrate into\n\
     the application's payload copy/checksum loop -- live evidence of\n\
     where the transfer budget goes, gathered without stopping the guest.\n"
